//===- rewrite_test.cpp - Solver-verified rewrite engine -------------------===//
//
// Tests src/rewrite/: the cost model, each shipped rule with at least
// one accepted rewrite (solver proves the candidate) and one rejected
// candidate (solver refutes it, the original query is preserved), the
// driver's fixpoint/determinism properties, and the service integration
// (op "optimize", the SessionOptions::Optimize pre-pass and its
// cache-hit uplift on near-duplicate workloads).
//
//===----------------------------------------------------------------------===//

#include "rewrite/Cost.h"
#include "rewrite/Rewriter.h"
#include "service/Batch.h"
#include "service/Session.h"
#include "xpath/Parser.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace xsa;

namespace {

ExprRef xp(const std::string &S) {
  std::string Err;
  ExprRef E = parseXPath(S, Err);
  EXPECT_NE(E, nullptr) << Err << " in: " << S;
  return E;
}

/// Runs the rewriter through a fresh session context so every proof
/// obligation goes through the session cache machinery.
struct Fixture {
  AnalysisSession Session;
  RewriteResult optimize(const std::string &Query,
                         const std::string &Dtd = "") {
    std::string Err;
    Formula Chi = Session.typeContext(Dtd, Err);
    EXPECT_NE(Chi, nullptr) << Err;
    Rewriter RW(Session.analyzer());
    return RW.optimize(xp(Query), Chi);
  }
};

/// Did any trace step of \p Rule get the given verdict?
bool traceHas(const RewriteResult &R, const std::string &Rule,
              bool Accepted) {
  for (const RewriteStep &S : R.Trace)
    if (S.Rule == Rule && S.Accepted == Accepted)
      return true;
  return false;
}

std::string optimizedText(const RewriteResult &R) {
  // The optimized query must round-trip: it is handed around as text.
  std::string Err;
  ExprRef Back = parseXPath(toString(R.Optimized), Err);
  EXPECT_NE(Back, nullptr) << Err;
  EXPECT_TRUE(astEquals(Back, R.Optimized));
  return toString(R.Optimized);
}

//===----------------------------------------------------------------------===//
// Cost model
//===----------------------------------------------------------------------===//

TEST(CostModel, ReverseAxesArePenalized) {
  CostModel CM;
  EXPECT_GT(CM.cost(xp("a/parent::b")), CM.cost(xp("a/b")));
  EXPECT_GT(CM.cost(xp("prec-sibling::a")), CM.cost(xp("foll-sibling::a")));
  // A filter existence check is cheaper than the same steps on the
  // selection path.
  EXPECT_LT(CM.cost(xp("a[b/c]")), CM.cost(xp("a/b/c")));
  // Iteration is costlier than a single transitive step.
  EXPECT_GT(CM.cost(xp("(child::*)+")), CM.cost(xp("descendant::*")));
}

//===----------------------------------------------------------------------===//
// fuse-steps
//===----------------------------------------------------------------------===//

TEST(RewriteRules, FuseStepsAccepted) {
  Fixture F;
  RewriteResult R = F.optimize("a//b");
  EXPECT_TRUE(R.changed());
  EXPECT_EQ(optimizedText(R), "child::a/descendant::b");
  EXPECT_TRUE(traceHas(R, "fuse-steps", /*Accepted=*/true));
  EXPECT_LT(R.OptimizedCost, R.OriginalCost);
}

TEST(RewriteRules, FuseStepsRejected) {
  // a/self::b selects nothing, but child::a is not equivalent to it:
  // the speculative merge is refuted and the query left alone.
  Fixture F;
  RewriteResult R = F.optimize("a/self::b");
  EXPECT_FALSE(R.changed());
  EXPECT_EQ(optimizedText(R), "child::a/self::b");
  EXPECT_TRUE(traceHas(R, "fuse-steps", /*Accepted=*/false));
}

TEST(RewriteRules, FuseStepsMoreIdentities) {
  Fixture F;
  EXPECT_EQ(optimizedText(F.optimize("*/desc-or-self::b")),
            "descendant::b");
  EXPECT_EQ(optimizedText(F.optimize("a/desc-or-self::*/desc-or-self::*/b")),
            "child::a/descendant::b");
  // A qualifier on the fused step rides along.
  EXPECT_EQ(optimizedText(F.optimize("//a[b]")),
            "/descendant::a[child::b]");
  EXPECT_EQ(optimizedText(F.optimize("x//y[z]/w")),
            "child::x/descendant::y[child::z]/child::w");
}

//===----------------------------------------------------------------------===//
// drop-self
//===----------------------------------------------------------------------===//

TEST(RewriteRules, DropSelfAccepted) {
  Fixture F;
  RewriteResult R = F.optimize("a/self::*/b");
  EXPECT_TRUE(R.changed());
  EXPECT_EQ(optimizedText(R), "child::a/child::b");
  EXPECT_TRUE(traceHas(R, "drop-self", /*Accepted=*/true));
}

TEST(RewriteRules, DropSelfTypedAcceptedUntypedRejected) {
  // Under the Wikipedia DTD the root can only be article, so the
  // /self::article filter is vacuous — but only under the type.
  Fixture Typed;
  RewriteResult R = Typed.optimize("/self::article/meta", "wikipedia");
  EXPECT_TRUE(R.changed());
  EXPECT_EQ(optimizedText(R), "/child::meta");
  EXPECT_TRUE(traceHas(R, "drop-self", /*Accepted=*/true));

  Fixture Untyped;
  RewriteResult U = Untyped.optimize("/self::article/meta");
  EXPECT_FALSE(U.changed());
  EXPECT_TRUE(traceHas(U, "drop-self", /*Accepted=*/false));
}

//===----------------------------------------------------------------------===//
// collapse-iterate
//===----------------------------------------------------------------------===//

TEST(RewriteRules, CollapseIterateAccepted) {
  Fixture F;
  RewriteResult R = F.optimize("(child::*)+");
  EXPECT_EQ(optimizedText(R), "descendant::*");
  EXPECT_TRUE(traceHas(R, "collapse-iterate", /*Accepted=*/true));

  EXPECT_EQ(optimizedText(F.optimize("(foll-sibling::*)+")),
            "foll-sibling::*");
  EXPECT_EQ(optimizedText(F.optimize("(parent::*)+")), "ancestor::*");
  EXPECT_EQ(optimizedText(F.optimize("(descendant::a)+")), "descendant::a");
}

TEST(RewriteRules, CollapseIterateRejected) {
  // (a)+ requires every intermediate node to be labeled a; the
  // descendant::a candidate is refuted (the paper's own "unsound
  // candidate" example from §1-style rewriting).
  Fixture F;
  RewriteResult R = F.optimize("(a)+");
  EXPECT_FALSE(R.changed());
  EXPECT_EQ(optimizedText(R), "(child::a)+");
  EXPECT_TRUE(traceHas(R, "collapse-iterate", /*Accepted=*/false));
}

//===----------------------------------------------------------------------===//
// prune-qualifier
//===----------------------------------------------------------------------===//

TEST(RewriteRules, PruneQualifierTypedAccepted) {
  // Every meta the Wikipedia DTD admits has a title child: [title] is
  // vacuous under the type, and the fused result is a single step.
  Fixture F;
  RewriteResult R = F.optimize("//meta[title]", "wikipedia");
  EXPECT_TRUE(R.changed());
  EXPECT_EQ(optimizedText(R), "/descendant::meta");
  EXPECT_TRUE(traceHas(R, "prune-qualifier", /*Accepted=*/true));
}

TEST(RewriteRules, PruneQualifierRejected) {
  // status is optional on edit: the filter is real and must survive.
  Fixture F;
  RewriteResult R = F.optimize("//edit[status]", "wikipedia");
  EXPECT_FALSE(traceHas(R, "prune-qualifier", /*Accepted=*/true));
  EXPECT_TRUE(traceHas(R, "prune-qualifier", /*Accepted=*/false));
  // The filter survives (the desc-or-self prefix may still fuse).
  EXPECT_NE(optimizedText(R).find("[child::status]"), std::string::npos);

  // Untyped, [title] is a real filter too.
  Fixture Untyped;
  RewriteResult U = Untyped.optimize("a[b]");
  EXPECT_FALSE(U.changed());
  EXPECT_TRUE(traceHas(U, "prune-qualifier", /*Accepted=*/false));
}

TEST(RewriteRules, PruneQualifierDuplicateConjunct) {
  Fixture F;
  RewriteResult R = F.optimize("a[b and b]");
  EXPECT_TRUE(R.changed());
  EXPECT_EQ(optimizedText(R), "child::a[child::b]");
}

//===----------------------------------------------------------------------===//
// dead-branch
//===----------------------------------------------------------------------===//

TEST(RewriteRules, DeadBranchTypedAccepted) {
  // article's children are meta and text|redirect — the title arm is
  // dead under the DTD, certified by arm emptiness.
  Fixture F;
  RewriteResult R = F.optimize(
      "/self::article/title | /self::article/meta/title", "wikipedia");
  EXPECT_TRUE(R.changed());
  EXPECT_EQ(optimizedText(R), "/child::meta/child::title");
  EXPECT_TRUE(traceHas(R, "dead-branch", /*Accepted=*/true));
  bool SawEmptinessCheck = false;
  for (const RewriteStep &S : R.Trace)
    if (S.Rule == "dead-branch" && std::string(S.Check) == "emptiness")
      SawEmptinessCheck = true;
  EXPECT_TRUE(SawEmptinessCheck);
}

TEST(RewriteRules, DeadBranchRejected) {
  // Both arms are live without a type: every drop candidate is refuted.
  Fixture F;
  RewriteResult R = F.optimize("a | b");
  EXPECT_FALSE(R.changed());
  EXPECT_EQ(optimizedText(R), "child::a | child::b");
  EXPECT_TRUE(traceHas(R, "dead-branch", /*Accepted=*/false));
}

TEST(RewriteRules, DeadBranchDuplicateArm) {
  // A duplicate arm is not empty — it is dropped via the equivalence
  // check instead.
  Fixture F;
  RewriteResult R = F.optimize("//a | //a");
  EXPECT_TRUE(R.changed());
  EXPECT_EQ(optimizedText(R), "/descendant::a");
}

TEST(RewriteRules, DeadBranchInPathAlternative) {
  // In-path alternatives are context-sensitive: certified by whole-
  // expression equivalence, not arm emptiness.
  Fixture F;
  RewriteResult R = F.optimize("/self::article/(title | meta)", "wikipedia");
  EXPECT_TRUE(R.changed());
  EXPECT_EQ(optimizedText(R), "/child::meta");
}

//===----------------------------------------------------------------------===//
// reverse-axis
//===----------------------------------------------------------------------===//

TEST(RewriteRules, ReverseAxisParentAccepted) {
  Fixture F;
  RewriteResult R = F.optimize("a/b/parent::a");
  EXPECT_TRUE(R.changed());
  EXPECT_EQ(optimizedText(R), "child::a[child::b]");
  EXPECT_TRUE(traceHas(R, "reverse-axis", /*Accepted=*/true));
}

TEST(RewriteRules, ReverseAxisPrecSiblingAccepted) {
  Fixture F;
  RewriteResult R = F.optimize("c/prec-sibling::a");
  EXPECT_EQ(optimizedText(R), "child::a[foll-sibling::c]");
  EXPECT_TRUE(traceHas(R, "reverse-axis", /*Accepted=*/true));
  // The qualified form too: c[x]/prec-sibling::a.
  RewriteResult Q = F.optimize("c[x]/prec-sibling::a");
  EXPECT_EQ(optimizedText(Q), "child::a[foll-sibling::c[child::x]]");
}

TEST(RewriteRules, ReverseAxisAncestorRejected) {
  // The classic trap: ancestors of a child include nodes above the
  // context, which no downward filter sees. The candidate is proposed
  // and refuted; the original query survives.
  Fixture F;
  RewriteResult R = F.optimize("a/b/ancestor::a");
  EXPECT_FALSE(R.changed());
  EXPECT_EQ(optimizedText(R), "child::a/child::b/ancestor::a");
  EXPECT_TRUE(traceHas(R, "reverse-axis", /*Accepted=*/false));
}

//===----------------------------------------------------------------------===//
// Driver properties
//===----------------------------------------------------------------------===//

TEST(Rewriter, AcceptedRewritesAreActuallyEquivalent) {
  // Belt and braces: re-prove end-to-end equivalence of original and
  // optimized for a mixed bag of accepted rewrites.
  const char *Queries[] = {"a//b", "a/self::*/b", "a/b/parent::a",
                           "c/prec-sibling::a", "(child::*)+"};
  Fixture F;
  for (const char *Q : Queries) {
    RewriteResult R = F.optimize(Q);
    AnalysisResult Eq = F.Session.analyzer().equivalence(
        R.Original, F.Session.factory().trueF(), R.Optimized,
        F.Session.factory().trueF());
    EXPECT_TRUE(Eq.Holds) << Q << " vs " << toString(R.Optimized);
  }
}

TEST(Rewriter, DeterministicTrace) {
  auto Run = [] {
    Fixture F;
    RewriteResult R =
        F.optimize("/self::article/title | //meta[title]", "wikipedia");
    std::ostringstream OS;
    for (const RewriteStep &S : R.Trace)
      OS << S.Rule << "|" << S.From << "|" << S.To << "|" << S.Check << "|"
         << S.Accepted << "\n";
    OS << "=> " << toString(R.Optimized);
    return OS.str();
  };
  EXPECT_EQ(Run(), Run());
}

TEST(Rewriter, FixpointIsStable) {
  // Optimizing an already-optimized query accepts nothing further.
  Fixture F;
  RewriteResult R1 = F.optimize("a//b[self::*]/parent::a");
  RewriteResult R2 = F.optimize(toString(R1.Optimized));
  EXPECT_FALSE(R2.changed());
  EXPECT_EQ(toString(R2.Optimized), toString(R1.Optimized));
}

TEST(Rewriter, ObligationsHitTheSessionCache) {
  // The same optimize run through a second context of the same session
  // answers its proof obligations from the shared cache.
  AnalysisSession Session;
  Rewriter RW(Session.analyzer());
  std::string Err;
  Formula Chi = Session.typeContext("", Err);
  RewriteResult Cold = RW.optimize(xp("a/b/parent::a"), Chi);
  EXPECT_TRUE(Cold.changed());
  RewriteResult Warm = RW.optimize(xp("a/b/parent::a"), Chi);
  ASSERT_EQ(Cold.Trace.size(), Warm.Trace.size());
  for (const RewriteStep &S : Warm.Trace)
    EXPECT_TRUE(S.FromCache) << S.Rule << ": " << S.From << " => " << S.To;
}

//===----------------------------------------------------------------------===//
// Service integration: op "optimize" and the pre-pass
//===----------------------------------------------------------------------===//

TEST(OptimizeService, RequestRoundTrip) {
  std::string Err;
  JsonRef Obj = parseJson(
      R"({"id":"o1","op":"optimize","e":"a/b/parent::a"})", Err);
  ASSERT_NE(Obj, nullptr) << Err;
  AnalysisRequest Req;
  ASSERT_TRUE(requestFromJson(*Obj, Req, Err)) << Err;
  EXPECT_EQ(Req.Kind, RequestKind::Optimize);

  AnalysisSession Session;
  AnalysisResponse Resp = runRequest(Session, Req);
  ASSERT_TRUE(Resp.Ok) << Resp.Error;
  EXPECT_EQ(Resp.Optimized, "child::a[child::b]");
  EXPECT_LT(Resp.CostAfter, Resp.CostBefore);
  EXPECT_FALSE(Resp.Trace.empty());

  std::string Line = responseToJson(Resp)->dump();
  EXPECT_NE(Line.find("\"optimized\":\"child::a[child::b]\""),
            std::string::npos);
  EXPECT_NE(Line.find("\"trace\":["), std::string::npos);
  EXPECT_NE(Line.find("\"verdict\":\"proved\""), std::string::npos);
  // Stable encoding drops the volatile per-step fields.
  std::string Stable =
      responseToJson(Resp, /*IncludeVolatile=*/false)->dump();
  EXPECT_EQ(Stable.find("\"cache\""), std::string::npos);
  EXPECT_EQ(Stable.find("\"time_ms\""), std::string::npos);
}

TEST(OptimizeService, MemoizedPerContext) {
  AnalysisSession Session;
  AnalysisRequest Req;
  Req.Kind = RequestKind::Optimize;
  Req.Query1 = "a//b";
  runRequest(Session, Req);
  runRequest(Session, Req);
  SessionStats S = Session.stats();
  EXPECT_EQ(S.QueriesOptimized, 1u);
  EXPECT_EQ(S.OptimizeCacheHits, 1u);
  EXPECT_GE(S.RewritesAccepted, 1u);
}

TEST(OptimizeService, ErrorsAreReported) {
  AnalysisSession Session;
  AnalysisRequest Req;
  Req.Kind = RequestKind::Optimize;
  Req.Query1 = "a[";
  AnalysisResponse Resp = runRequest(Session, Req);
  EXPECT_FALSE(Resp.Ok);
  EXPECT_FALSE(Resp.Error.empty());
}

TEST(OptimizePrePass, VerdictsUnchanged) {
  std::vector<AnalysisRequest> Reqs;
  auto Add = [&](RequestKind K, const char *E1, const char *E2) {
    AnalysisRequest R;
    R.Kind = K;
    R.Query1 = E1;
    R.Query2 = E2 ? E2 : "";
    Reqs.push_back(R);
  };
  Add(RequestKind::Containment, "a//b", "//b");
  Add(RequestKind::Containment, "//b", "a//b");
  Add(RequestKind::Emptiness, "a/self::b", nullptr);
  Add(RequestKind::Overlap, "a//b", "a/descendant::b");

  AnalysisSession Plain;
  SessionOptions WithOpt;
  WithOpt.Optimize = true;
  AnalysisSession Optimized(WithOpt);
  std::vector<AnalysisResponse> A = runBatch(Plain, Reqs);
  std::vector<AnalysisResponse> B = runBatch(Optimized, Reqs);
  ASSERT_EQ(A.size(), B.size());
  for (size_t I = 0; I < A.size(); ++I) {
    EXPECT_TRUE(A[I].Ok);
    EXPECT_TRUE(B[I].Ok);
    EXPECT_EQ(A[I].Holds, B[I].Holds) << Reqs[I].Query1;
  }
}

TEST(OptimizePrePass, NearDuplicatesShareCacheEntries) {
  // a//b and a/descendant::b compile to different formulas, so without
  // the pre-pass each pays its own solve; with it both canonicalize to
  // a/descendant::b and the second is a cache hit.
  std::vector<AnalysisRequest> Reqs;
  for (const char *Q : {"a//b", "a/descendant::b"}) {
    AnalysisRequest R;
    R.Kind = RequestKind::Emptiness;
    R.Query1 = Q;
    Reqs.push_back(R);
  }

  AnalysisSession Plain;
  std::vector<AnalysisResponse> A = runBatch(Plain, Reqs);
  EXPECT_FALSE(A[0].FromCache);
  EXPECT_FALSE(A[1].FromCache);

  SessionOptions WithOpt;
  WithOpt.Optimize = true;
  AnalysisSession Optimized(WithOpt);
  std::vector<AnalysisResponse> B = runBatch(Optimized, Reqs);
  EXPECT_TRUE(B[1].FromCache)
      << "pre-pass should canonicalize the near-duplicate onto the "
         "first request's cache entry";
  // Semantic payload identical with and without the pre-pass.
  for (size_t I = 0; I < Reqs.size(); ++I)
    EXPECT_EQ(A[I].Holds, B[I].Holds);
}

TEST(OptimizePrePass, ConfigLineTogglesMidStream) {
  AnalysisSession Session;
  std::istringstream In(
      "{\"id\":\"c\",\"op\":\"config\",\"optimize\":true}\n"
      "{\"id\":\"q1\",\"op\":\"optimize\",\"e\":\"a//b\"}\n");
  std::ostringstream Out;
  size_t Failed = 0;
  size_t Answered = runBatchJsonLines(Session, In, Out, &Failed);
  EXPECT_EQ(Answered, 2u);
  EXPECT_EQ(Failed, 0u);
  EXPECT_TRUE(Session.optimizeEnabled());
  EXPECT_NE(Out.str().find("\"optimize\":true"), std::string::npos);
  EXPECT_NE(Out.str().find("\"optimized\":\"child::a/descendant::b\""),
            std::string::npos);
}

} // namespace
