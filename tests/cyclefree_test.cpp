//===- cyclefree_test.cpp - Cycle-freeness checkers ------------------------===//
//
// Cross-checks the polynomial graph-based cycle-freeness decision against
// the literal Figure 3 judgement on random formulas, and verifies the
// paper's structural claims: every XPath translation and every type
// translation is cycle free (Prop 5.1(2), §5.2).
//
//===----------------------------------------------------------------------===//

#include "logic/CycleFree.h"
#include "logic/Parser.h"
#include "xpath/Compile.h"
#include "xpath/Parser.h"
#include "xtype/BuiltinDtds.h"
#include "xtype/Compile.h"

#include <gtest/gtest.h>

#include <random>

using namespace xsa;

namespace {

TEST(CycleFree, AllXPathTranslationsAreCycleFree) {
  // Prop 5.1(2) across the paper's whole query suite and more.
  const char *Queries[] = {
      "/a[.//b[c/*//d]/b[c//d]/b[c/d]]",
      "/a[.//b[c/*//d]/b[c/d]]",
      "a/b//c/foll-sibling::d/e",
      "a/b//d[prec-sibling::c]/e",
      "a//c/following::d/e",
      "a/b[//c]/following::d/e & a/d[preceding::c]/e",
      "*//switch[ancestor::head]//seq//audio[prec-sibling::video]",
      "descendant::a[ancestor::a]",
      "/descendant::*",
      "html/(head | body)",
      "ancestor::a/descendant::b/preceding::c",
      "..//..//a",
      "a[not(b[not(c[not(d)])])]",
      "preceding::a/following::b & following::c/preceding::d",
      "anc-or-self::*[foll-sibling::a]/desc-or-self::b",
  };
  FormulaFactory FF;
  for (const char *Q : Queries) {
    std::string Err;
    ExprRef E = parseXPath(Q, Err);
    ASSERT_NE(E, nullptr) << Q << ": " << Err;
    Formula Psi = compileXPath(FF, E, FF.trueF());
    EXPECT_TRUE(isCycleFree(Psi)) << Q;
    // Negations used by containment are cycle free too.
    EXPECT_TRUE(isCycleFree(FF.negate(Psi))) << "~" << Q;
  }
}

TEST(CycleFree, AllTypeTranslationsAreCycleFree) {
  FormulaFactory FF;
  EXPECT_TRUE(isCycleFree(compileDtd(FF, wikipediaDtd())));
  EXPECT_TRUE(isCycleFree(compileDtd(FF, smil10Dtd())));
  // The XHTML formula is large; the polynomial checker must stay fast.
  EXPECT_TRUE(isCycleFree(compileDtd(FF, xhtml10StrictDtd())));
}

TEST(CycleFree, Fig3AgreesOnSmallTypeFormulas) {
  FormulaFactory FF;
  EXPECT_TRUE(isCycleFreeFig3(compileDtd(FF, wikipediaDtd())));
}

//===----------------------------------------------------------------------===//
// Random differential sweep between the two checkers.
//===----------------------------------------------------------------------===//

/// Builds a random guarded-or-not formula over at most two recursion
/// variables, mixing directions so that both verdicts occur.
Formula randomRecFormula(FormulaFactory &FF, std::mt19937 &Rng) {
  Symbol X = internSymbol("X");
  Symbol Y = internSymbol("Y");
  auto RandomProgram = [&]() { return static_cast<Program>(Rng() % 4); };
  auto Leaf = [&](Symbol V) -> Formula {
    switch (Rng() % 3) {
    case 0:
      return FF.prop("a");
    case 1:
      return FF.var(V);
    default:
      return FF.conj(FF.prop("b"), FF.var(V));
    }
  };
  auto Chain = [&](Symbol V) -> Formula {
    Formula F = Leaf(V);
    int Steps = 1 + Rng() % 3;
    for (int I = 0; I < Steps; ++I)
      F = FF.diamond(RandomProgram(), F);
    return F;
  };
  Formula DefX = FF.disj(FF.prop("a"), Chain(X));
  if (Rng() % 2)
    DefX = FF.disj(DefX, Chain(Y));
  Formula DefY = FF.disj(FF.prop("b"), Chain(Rng() % 2 ? X : Y));
  return FF.mu({{X, DefX}, {Y, DefY}}, FF.var(X));
}

class CycleFreeDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(CycleFreeDifferentialTest, GraphAgreesWithFig3) {
  std::mt19937 Rng(GetParam());
  FormulaFactory FF;
  for (int Round = 0; Round < 40; ++Round) {
    Formula F = randomRecFormula(FF, Rng);
    EXPECT_EQ(isCycleFree(F), isCycleFreeFig3(F)) << FF.toString(F);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CycleFreeDifferentialTest,
                         ::testing::Range(1, 16));

} // namespace
