//===- service_test.cpp - Analysis service subsystem ----------------------===//
//
// Tests the session layer: canonical (α-invariant) formula hashing, the
// LRU semantic result cache (hits on structurally identical queries,
// misses after eviction), batch deduplication of repeated operands and
// shared DTD contexts, the stats counters, and the JSON-lines batch
// protocol — including the acceptance scenario that a repeated-query
// batch reports cache hits with results identical to a cold run.
//
// The parallel engine is covered too: the WorkerPool, the sharded
// thread-safe result cache (including a single-shard stress test meant
// to run under TSan), determinism of multi-worker batches — a warm
// N-thread batch must produce byte-identical JSON to the 1-thread run,
// and cold runs must agree on every deterministic field — and the
// persistent cache warm-up across sessions.
//
//===----------------------------------------------------------------------===//

#include "obs/Trace.h"
#include "service/Batch.h"
#include "service/Cache.h"
#include "service/Session.h"
#include "support/WorkerPool.h"

#include "logic/Parser.h"
#include "xpath/Compile.h"
#include "xpath/Parser.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>

using namespace xsa;

namespace {

Formula parse(FormulaFactory &FF, const std::string &S) {
  std::string Err;
  Formula F = parseFormula(FF, S, Err);
  EXPECT_NE(F, nullptr) << Err << " in: " << S;
  return F;
}

ExprRef xp(const std::string &S) {
  std::string Err;
  ExprRef E = parseXPath(S, Err);
  EXPECT_NE(E, nullptr) << Err << " in: " << S;
  return E;
}

//===----------------------------------------------------------------------===//
// Canonicalization
//===----------------------------------------------------------------------===//

TEST(Canonicalize, AlphaEquivalentFormulasShareOneNode) {
  FormulaFactory FF;
  Formula A = parse(FF, "let $X = a | <1>$X in $X");
  Formula B = parse(FF, "let $Y = a | <1>$Y in $Y");
  EXPECT_NE(A, B) << "distinct binder names intern differently";
  EXPECT_EQ(FF.canonicalize(A), FF.canonicalize(B));
  EXPECT_EQ(FF.canonicalHash(A), FF.canonicalHash(B));
}

TEST(Canonicalize, DistinctFormulasStayDistinct) {
  FormulaFactory FF;
  Formula A = parse(FF, "let $X = a | <1>$X in $X");
  Formula C = parse(FF, "let $X = b | <1>$X in $X");
  EXPECT_NE(FF.canonicalize(A), FF.canonicalize(C));
}

TEST(Canonicalize, NestedBindersAndFreeVariables) {
  FormulaFactory FF;
  Formula A = parse(FF, "let $X = <1>(let $Y = a | <2>$Y in $Y) in $X");
  Formula B = parse(FF, "let $U = <1>(let $V = a | <2>$V in $V) in $U");
  EXPECT_EQ(FF.canonicalize(A), FF.canonicalize(B));
  // A free variable is left untouched.
  Formula Free = FF.var("Z");
  EXPECT_EQ(FF.canonicalize(Free), Free);
}

TEST(Canonicalize, RepeatedXPathCompilationsCanonicalizeEqual) {
  // compileXPath draws fresh µ-variables each time, so two compilations
  // of the same query are α-variants — exactly what the semantic cache
  // must identify.
  FormulaFactory FF;
  Formula F1 = compileXPath(FF, xp("/a//b[c]"), FF.trueF());
  Formula F2 = compileXPath(FF, xp("/a//b[c]"), FF.trueF());
  EXPECT_EQ(FF.canonicalize(F1), FF.canonicalize(F2));
  Formula Other = compileXPath(FF, xp("/a//b[d]"), FF.trueF());
  EXPECT_NE(FF.canonicalize(F1), FF.canonicalize(Other));
}

//===----------------------------------------------------------------------===//
// LRU cache
//===----------------------------------------------------------------------===//

TEST(LruResultCache, HitMissEvictAndCounters) {
  FormulaFactory FF;
  Formula A = FF.prop("a");
  Formula B = FF.prop("b");
  Formula C = FF.prop("c");
  SolverResult R;
  R.Satisfiable = true;

  LruResultCache Cache(/*Capacity=*/2);
  EXPECT_EQ(Cache.lookup(A, 0), nullptr);
  Cache.store(A, 0, R);
  Cache.store(B, 0, R);
  ASSERT_NE(Cache.lookup(A, 0), nullptr); // A is now most recent
  Cache.store(C, 0, R);                   // evicts B (least recent)
  EXPECT_EQ(Cache.lookup(B, 0), nullptr);
  EXPECT_NE(Cache.lookup(A, 0), nullptr);
  EXPECT_NE(Cache.lookup(C, 0), nullptr);

  const CacheStats &S = Cache.stats();
  EXPECT_EQ(S.Hits, 3u);
  EXPECT_EQ(S.Misses, 2u);
  EXPECT_EQ(S.Insertions, 3u);
  EXPECT_EQ(S.Evictions, 1u);
  EXPECT_EQ(Cache.size(), 2u);
}

TEST(LruResultCache, OptionsFingerprintSeparatesEntries) {
  FormulaFactory FF;
  Formula A = FF.prop("a");
  SolverResult Yes, No;
  Yes.Satisfiable = true;
  No.Satisfiable = false;
  LruResultCache Cache(8);
  Cache.store(A, 1, Yes);
  Cache.store(A, 2, No);
  ASSERT_NE(Cache.lookup(A, 1), nullptr);
  EXPECT_TRUE(Cache.lookup(A, 1)->Satisfiable);
  ASSERT_NE(Cache.lookup(A, 2), nullptr);
  EXPECT_FALSE(Cache.lookup(A, 2)->Satisfiable);
}

//===----------------------------------------------------------------------===//
// Session cache behaviour
//===----------------------------------------------------------------------===//

TEST(AnalysisSession, CacheHitOnStructurallyIdenticalQueries) {
  AnalysisSession Session;
  ExprRef E1 = xp("/a/b");
  ExprRef E2 = xp("//b");
  Formula Top = Session.factory().trueF();

  AnalysisResult Cold = Session.containment(E1, Top, E2, Top);
  EXPECT_TRUE(Cold.Holds);
  EXPECT_FALSE(Cold.FromCache);

  // Same operands again — even via freshly parsed (structurally
  // identical) expressions.
  AnalysisResult Warm = Session.containment(xp("/a/b"), Top, xp("//b"), Top);
  EXPECT_TRUE(Warm.FromCache);
  EXPECT_EQ(Warm.Holds, Cold.Holds);

  SessionStats S = Session.stats();
  EXPECT_EQ(S.Cache.Hits, 1u);
  EXPECT_EQ(S.Cache.Misses, 1u);
  EXPECT_EQ(S.Solves, 1u);
}

TEST(AnalysisSession, MissAfterEviction) {
  // Capacity 1: solving A, then B, then A again must re-solve A.
  AnalysisSession Session(SolverOptions{}, /*CacheCapacity=*/1);
  Formula A = parse(Session.factory(), "<1>a");
  Formula B = parse(Session.factory(), "<1>b");

  EXPECT_FALSE(Session.satisfiable(A).FromCache);
  EXPECT_TRUE(Session.satisfiable(A).FromCache);
  EXPECT_FALSE(Session.satisfiable(B).FromCache); // evicts A
  EXPECT_FALSE(Session.satisfiable(A).FromCache); // miss again

  SessionStats S = Session.stats();
  EXPECT_GE(S.Cache.Evictions, 1u);
  EXPECT_EQ(S.Cache.Hits, 1u);
  EXPECT_EQ(S.Solves, 3u);
}

TEST(AnalysisSession, RawAndAnalyzerOptionsDoNotCrossContaminate) {
  // The same formula solved raw (hedge models allowed) and through the
  // Analyzer (single-rooted models) must not share cache entries: the
  // options fingerprint differs.
  SolverOptions Raw;
  SolverOptions Single = Raw;
  Single.RequireSingleRoot = true;
  EXPECT_NE(solverOptionsKey(Raw), solverOptionsKey(Single));
}

TEST(AnalysisSession, QueryAndDtdMemoization) {
  AnalysisSession Session;
  std::string Err;
  ExprRef E1 = Session.query("//b", Err);
  ASSERT_NE(E1, nullptr);
  ExprRef E2 = Session.query("//b", Err);
  EXPECT_EQ(E1.get(), E2.get()) << "memoized parse returns the same AST";

  Formula T1 = Session.typeContext("wikipedia", Err);
  ASSERT_NE(T1, nullptr);
  Formula T2 = Session.typeContext("wikipedia", Err);
  EXPECT_EQ(T1, T2);

  SessionStats S = Session.stats();
  EXPECT_EQ(S.QueriesParsed, 1u);
  EXPECT_EQ(S.QueryCacheHits, 1u);
  EXPECT_EQ(S.DtdCompilations, 1u);
  EXPECT_EQ(S.DtdCacheHits, 1u);

  // Parse failures are memoized too, with the error preserved.
  EXPECT_EQ(Session.query("///", Err), nullptr);
  EXPECT_FALSE(Err.empty());
  std::string Err2;
  EXPECT_EQ(Session.query("///", Err2), nullptr);
  EXPECT_EQ(Err, Err2);
}

//===----------------------------------------------------------------------===//
// Batch pipeline
//===----------------------------------------------------------------------===//

AnalysisRequest containsReq(const std::string &Id, const std::string &E1,
                            const std::string &E2) {
  AnalysisRequest R;
  R.Id = Id;
  R.Kind = RequestKind::Containment;
  R.Query1 = E1;
  R.Query2 = E2;
  return R;
}

TEST(Batch, DedupsRepeatedContainmentOperands) {
  AnalysisSession Session;
  // Four requests over two distinct problems; the duplicates must be
  // answered from the cache with identical verdicts.
  std::vector<AnalysisRequest> Reqs = {
      containsReq("a", "/a/b", "//b"),
      containsReq("b", "//b", "/a/b"),
      containsReq("a2", "/a/b", "//b"),
      containsReq("b2", "//b", "/a/b"),
  };
  std::vector<AnalysisResponse> Resps = runBatch(Session, Reqs);
  ASSERT_EQ(Resps.size(), 4u);
  for (const AnalysisResponse &R : Resps)
    EXPECT_TRUE(R.Ok) << R.Error;
  EXPECT_FALSE(Resps[0].FromCache);
  EXPECT_FALSE(Resps[1].FromCache);
  EXPECT_TRUE(Resps[2].FromCache);
  EXPECT_TRUE(Resps[3].FromCache);
  EXPECT_EQ(Resps[2].Holds, Resps[0].Holds);
  EXPECT_EQ(Resps[3].Holds, Resps[1].Holds);

  SessionStats S = Session.stats();
  EXPECT_EQ(S.Solves, 2u) << "two distinct problems, two solver runs";
  EXPECT_EQ(S.Cache.Hits, 2u);
  // The operand strings were parsed once each.
  EXPECT_EQ(S.QueriesParsed, 2u);
  EXPECT_GE(S.QueryCacheHits, 6u);
}

TEST(Batch, WarmRequestsDoNotGrowTheFormulaArena) {
  // A fully-warm repeated request must be allocation-stable: the query
  // memo returns the same AST, the Analyzer's compile memo the same
  // formula, and the canonical memo the same cache key — so the factory
  // arena stops growing no matter how often the request repeats.
  AnalysisSession Session;
  std::vector<AnalysisRequest> Reqs = {containsReq("a", "/a/b", "//b")};
  runBatch(Session, Reqs);
  runBatch(Session, Reqs); // warm once, so every memo is populated
  size_t Nodes = Session.factory().numNodes();
  for (int I = 0; I < 5; ++I)
    runBatch(Session, Reqs);
  EXPECT_EQ(Session.factory().numNodes(), Nodes);
}

TEST(Batch, SharedDtdCompiledOnce) {
  AnalysisSession Session;
  std::vector<AnalysisRequest> Reqs;
  for (int I = 0; I < 3; ++I) {
    AnalysisRequest R;
    R.Id = "e" + std::to_string(I);
    R.Kind = RequestKind::Emptiness;
    R.Query1 = "//unknown" + std::to_string(I);
    R.Dtd1 = "wikipedia";
    Reqs.push_back(R);
  }
  std::vector<AnalysisResponse> Resps = runBatch(Session, Reqs);
  for (const AnalysisResponse &R : Resps)
    EXPECT_TRUE(R.Ok) << R.Error;
  SessionStats S = Session.stats();
  EXPECT_EQ(S.DtdCompilations, 1u);
  EXPECT_EQ(S.DtdCacheHits, 2u);
}

//===----------------------------------------------------------------------===//
// JSON
//===----------------------------------------------------------------------===//

TEST(Json, ParseAndDumpRoundTrip) {
  std::string Err;
  JsonRef V = parseJson(
      R"({"op":"cover","id":"qA","others":["//a","//b"],"n":3,"t":true})",
      Err);
  ASSERT_NE(V, nullptr) << Err;
  EXPECT_EQ(V->str("op"), "cover");
  EXPECT_EQ(V->str("id"), "qA");
  EXPECT_EQ(V->get("others")->items().size(), 2u);
  EXPECT_EQ(V->get("n")->asNumber(), 3);
  EXPECT_TRUE(V->get("t")->asBool());
  EXPECT_TRUE(V->get("missing")->isNull());

  // dump() emits valid JSON that re-parses to the same shape.
  JsonRef Again = parseJson(V->dump(), Err);
  ASSERT_NE(Again, nullptr) << Err;
  EXPECT_EQ(Again->dump(), V->dump());
}

TEST(Json, EscapeRoundTripsEverySingleByte) {
  // jsonQuote must emit a valid JSON string literal for any byte
  // content — control characters escaped, DEL and non-ASCII (UTF-8)
  // bytes passed through — and the parser must read it back verbatim.
  for (unsigned B = 0; B < 256; ++B) {
    std::string S(1, static_cast<char>(B));
    std::string Quoted = jsonQuote(S);
    std::string Err;
    JsonRef V = parseJson(Quoted, Err);
    ASSERT_NE(V, nullptr) << "byte " << B << ": " << Err;
    EXPECT_EQ(V->asString(), S) << "byte " << B;
  }
}

TEST(Json, EscapeControlAndMultiByte) {
  // Short escapes for the named controls, \u for the rest.
  EXPECT_EQ(jsonQuote("a\"b\\c"), R"("a\"b\\c")");
  EXPECT_EQ(jsonQuote("\n\r\t\b\f"), R"("\n\r\t\b\f")");
  EXPECT_EQ(jsonQuote(std::string(1, '\x01')), "\"\\u0001\"");
  EXPECT_EQ(jsonQuote(std::string(1, '\x1f')), "\"\\u001f\"");
  // DEL is legal unescaped.
  EXPECT_EQ(jsonQuote("\x7f"), "\"\x7f\"");
  // Multi-byte UTF-8 passes through and round-trips as a unit (this is
  // what model XML with non-ASCII element names relies on).
  std::string Utf8 = "caf\xc3\xa9 \xe2\x88\x80x";
  std::string Err;
  JsonRef V = parseJson(jsonQuote(Utf8), Err);
  ASSERT_NE(V, nullptr) << Err;
  EXPECT_EQ(V->asString(), Utf8);
  // Mixed content with embedded NUL survives too.
  std::string Mixed = std::string("a\0b", 3) + "\x1e" + "\xff";
  JsonRef M = parseJson(jsonQuote(Mixed), Err);
  ASSERT_NE(M, nullptr) << Err;
  EXPECT_EQ(M->asString(), Mixed);
}

TEST(Json, ParsesStandardEscapesAndUnicode) {
  std::string Err;
  JsonRef V = parseJson(R"("Aé∀\/\b\f")", Err);
  ASSERT_NE(V, nullptr) << Err;
  EXPECT_EQ(V->asString(), "A\xc3\xa9\xe2\x88\x80/\b\f");
  EXPECT_EQ(parseJson(R"("\u12")", Err), nullptr);
  EXPECT_EQ(parseJson(R"("\u12zz")", Err), nullptr);
  EXPECT_EQ(parseJson(R"("\q")", Err), nullptr);
}

TEST(Json, Errors) {
  std::string Err;
  EXPECT_EQ(parseJson("{\"a\":}", Err), nullptr);
  EXPECT_FALSE(Err.empty());
  EXPECT_EQ(parseJson("{} trailing", Err), nullptr);
  EXPECT_EQ(parseJson("\"unterminated", Err), nullptr);
  EXPECT_EQ(parseJson("", Err), nullptr);
}

TEST(Json, RequestDecoding) {
  std::string Err;
  JsonRef Obj = parseJson(
      R"({"id":"t1","op":"typecheck","e1":"//p","dtd":"xhtml","out":"smil"})",
      Err);
  ASSERT_NE(Obj, nullptr);
  AnalysisRequest Req;
  ASSERT_TRUE(requestFromJson(*Obj, Req, Err)) << Err;
  EXPECT_EQ(Req.Kind, RequestKind::TypeCheck);
  EXPECT_EQ(Req.Id, "t1");
  EXPECT_EQ(Req.Query1, "//p");
  EXPECT_EQ(Req.Dtd1, "xhtml");
  EXPECT_EQ(Req.OutDtd, "smil");

  JsonRef Bad = parseJson(R"({"id":"x","op":"nope"})", Err);
  ASSERT_NE(Bad, nullptr);
  EXPECT_FALSE(requestFromJson(*Bad, Req, Err));
}

//===----------------------------------------------------------------------===//
// JSON-lines end-to-end (the acceptance scenario)
//===----------------------------------------------------------------------===//

/// Runs the JSON-lines batch and returns the raw output text.
std::string runLinesRaw(AnalysisSession &Session, const std::string &Input,
                        bool Stable = false) {
  std::istringstream In(Input);
  std::ostringstream Out;
  runBatchJsonLines(Session, In, Out, nullptr, Stable);
  return Out.str();
}

/// Runs the JSON-lines batch and returns one parsed response per line.
std::vector<JsonRef> runLines(AnalysisSession &Session,
                              const std::string &Input) {
  std::vector<JsonRef> Resps;
  std::istringstream Parse(runLinesRaw(Session, Input));
  std::string Line;
  while (std::getline(Parse, Line)) {
    std::string Err;
    JsonRef V = parseJson(Line, Err);
    EXPECT_NE(V, nullptr) << Err << " in: " << Line;
    Resps.push_back(V);
  }
  return Resps;
}

TEST(BatchJsonLines, AnswersDistinctDecisionProblems) {
  // ≥3 distinct decision problems in one batch.
  const std::string Input =
      R"({"id":"q1","op":"contains","e1":"/a/b","e2":"//b"})" "\n"
      R"({"id":"q2","op":"overlap","e1":"//a","e2":"//b"})" "\n"
      R"({"id":"q3","op":"empty","e1":"a/b[parent::c]"})" "\n"
      R"({"id":"q4","op":"cover","e1":"/a/b","others":["//b","//c"]})" "\n"
      R"({"id":"q5","op":"sat","f":"<1>a & ~<1>T"})" "\n";
  AnalysisSession Session;
  std::vector<JsonRef> Resps = runLines(Session, Input);
  ASSERT_EQ(Resps.size(), 5u);
  for (const JsonRef &R : Resps)
    EXPECT_TRUE(R->get("ok")->asBool()) << R->dump();

  EXPECT_TRUE(Resps[0]->get("holds")->asBool());   // /a/b ⊆ //b
  EXPECT_FALSE(Resps[1]->get("holds")->asBool());  // //a ∩ //b = ∅
  EXPECT_TRUE(Resps[2]->get("holds")->asBool());   // b below a-root with c parent
  EXPECT_TRUE(Resps[3]->get("holds")->asBool());   // /a/b ⊆ //b ∪ //c
  EXPECT_FALSE(Resps[4]->get("holds")->asBool());  // contradiction unsat
}

TEST(BatchJsonLines, RepeatedBatchHitsCacheWithIdenticalResults) {
  const std::string Input =
      R"({"id":"q1","op":"contains","e1":"/a/b","e2":"//b"})" "\n"
      R"({"id":"q2","op":"overlap","e1":"//a","e2":"//b"})" "\n"
      R"({"id":"q3","op":"empty","e1":"a/b[parent::c]"})" "\n";

  // Cold run: fresh session, no hits.
  AnalysisSession ColdSession;
  std::vector<JsonRef> Cold = runLines(ColdSession, Input);
  ASSERT_EQ(Cold.size(), 3u);
  EXPECT_EQ(ColdSession.stats().Cache.Hits, 0u);

  // Warm run: same session answers the same batch again, entirely from
  // the cache, with identical verdicts.
  std::vector<JsonRef> Warm = runLines(ColdSession, Input);
  ASSERT_EQ(Warm.size(), 3u);
  SessionStats S = ColdSession.stats();
  EXPECT_GT(S.Cache.Hits, 0u);
  EXPECT_EQ(S.Cache.Hits, 3u);
  EXPECT_EQ(S.Solves, 3u) << "no new solver runs in the warm batch";
  for (size_t I = 0; I < 3; ++I) {
    EXPECT_EQ(Warm[I]->get("holds")->asBool(), Cold[I]->get("holds")->asBool());
    EXPECT_EQ(Warm[I]->get("satisfiable")->asBool(),
              Cold[I]->get("satisfiable")->asBool());
    EXPECT_EQ(Warm[I]->str("cache"), "hit");
    EXPECT_EQ(Cold[I]->str("cache"), "miss");
    // The model (when present) is byte-identical too.
    EXPECT_EQ(Warm[I]->str("model"), Cold[I]->str("model"));
  }

  // And a second cold session agrees with the cached answers.
  AnalysisSession Fresh;
  std::vector<JsonRef> Fresh2 = runLines(Fresh, Input);
  for (size_t I = 0; I < 3; ++I)
    EXPECT_EQ(Fresh2[I]->get("holds")->asBool(),
              Cold[I]->get("holds")->asBool());
}

TEST(BatchJsonLines, MalformedLinesDoNotAbortTheBatch) {
  const std::string Input =
      "this is not json\n"
      R"({"id":"ok1","op":"empty","e1":"//b"})" "\n"
      R"({"id":"bad","op":"contains","e1":"//b"})" "\n"; // missing e2
  AnalysisSession Session;
  std::vector<JsonRef> Resps = runLines(Session, Input);
  ASSERT_EQ(Resps.size(), 3u);
  EXPECT_FALSE(Resps[0]->get("ok")->asBool());
  EXPECT_TRUE(Resps[1]->get("ok")->asBool());
  EXPECT_FALSE(Resps[2]->get("ok")->asBool());
  EXPECT_EQ(Resps[2]->str("id"), "bad");
}

//===----------------------------------------------------------------------===//
// WorkerPool
//===----------------------------------------------------------------------===//

TEST(WorkerPool, EveryIndexRunsExactlyOnceWithValidWorkerIds) {
  WorkerPool Pool(4);
  EXPECT_EQ(Pool.threads(), 4u);
  constexpr size_t N = 1000;
  std::vector<std::atomic<int>> Counts(N);
  std::atomic<bool> BadWorker{false};
  Pool.parallelFor(N, [&](size_t I, size_t W) {
    Counts[I].fetch_add(1);
    if (W >= 4)
      BadWorker = true;
  });
  for (size_t I = 0; I < N; ++I)
    EXPECT_EQ(Counts[I].load(), 1) << "index " << I;
  EXPECT_FALSE(BadWorker.load());
}

TEST(WorkerPool, ReusableAndRobustToSmallRanges) {
  WorkerPool Pool(3);
  std::atomic<size_t> Total{0};
  Pool.parallelFor(0, [&](size_t, size_t) { Total += 1; });
  EXPECT_EQ(Total.load(), 0u);
  // Fewer items than workers, repeated to exercise the wake/finish
  // handshake across tasks.
  for (int Round = 0; Round < 10; ++Round)
    Pool.parallelFor(2, [&](size_t, size_t) { Total += 1; });
  EXPECT_EQ(Total.load(), 20u);
}

TEST(WorkerPool, FirstExceptionPropagatesAfterTheBarrier) {
  WorkerPool Pool(2);
  std::atomic<size_t> Ran{0};
  EXPECT_THROW(Pool.parallelFor(100,
                                [&](size_t I, size_t) {
                                  Ran += 1;
                                  if (I == 42)
                                    throw std::runtime_error("boom");
                                }),
               std::runtime_error);
  // The barrier still completed every index despite the throw.
  EXPECT_EQ(Ran.load(), 100u);
  // And the pool stays usable.
  Pool.parallelFor(5, [&](size_t, size_t) { Ran += 1; });
  EXPECT_EQ(Ran.load(), 105u);
}

//===----------------------------------------------------------------------===//
// ShardedResultCache
//===----------------------------------------------------------------------===//

TEST(ShardedResultCache, HitMissEvictAndCounters) {
  ShardedResultCache Cache(/*Capacity=*/2, /*Shards=*/1);
  ASSERT_EQ(Cache.numShards(), 1u);
  SolverResult R;
  R.Satisfiable = true;
  SolverResult Out;
  EXPECT_FALSE(Cache.lookup("a", 0, Out));
  Cache.store("a", 0, R);
  Cache.store("b", 0, R);
  EXPECT_TRUE(Cache.lookup("a", 0, Out)); // a is now most recent
  Cache.store("c", 0, R);                 // evicts b (least recent)
  EXPECT_FALSE(Cache.lookup("b", 0, Out));
  EXPECT_TRUE(Cache.lookup("a", 0, Out));
  EXPECT_TRUE(Cache.lookup("c", 0, Out));

  CacheStats S = Cache.stats();
  EXPECT_EQ(S.Hits, 3u);
  EXPECT_EQ(S.Misses, 2u);
  EXPECT_EQ(S.Insertions, 3u);
  EXPECT_EQ(S.Evictions, 1u);
  EXPECT_EQ(Cache.size(), 2u);
}

TEST(ShardedResultCache, OptionsFingerprintSeparatesEntries) {
  ShardedResultCache Cache(8, 4);
  SolverResult Yes, No, Out;
  Yes.Satisfiable = true;
  No.Satisfiable = false;
  Cache.store("k", 1, Yes);
  Cache.store("k", 2, No);
  ASSERT_TRUE(Cache.lookup("k", 1, Out));
  EXPECT_TRUE(Out.Satisfiable);
  ASSERT_TRUE(Cache.lookup("k", 2, Out));
  EXPECT_FALSE(Out.Satisfiable);
}

TEST(ShardedResultCache, ShardCountClampsToCapacity) {
  EXPECT_EQ(ShardedResultCache(1, 8).numShards(), 1u);
  EXPECT_EQ(ShardedResultCache(6, 8).numShards(), 4u);
  EXPECT_EQ(ShardedResultCache(1024, 8).numShards(), 8u);
  EXPECT_EQ(ShardedResultCache(1024, 5).numShards(), 4u);
  EXPECT_EQ(ShardedResultCache(0, 8).numShards(), 1u);
}

// The TSan target of the suite: many threads hammering one shard (one
// mutex, one LRU list) with a key range larger than the capacity, so
// lookups, insertions and evictions all race on the same structures.
TEST(ShardedResultCache, SingleShardStressUnderContention) {
  constexpr size_t Capacity = 8;
  constexpr size_t KeyRange = 32;
  constexpr size_t Ops = 8000;
  ShardedResultCache Cache(Capacity, /*Shards=*/1);
  ASSERT_EQ(Cache.numShards(), 1u);

  WorkerPool Pool(8);
  std::atomic<size_t> BadValues{0};
  Pool.parallelFor(Ops, [&](size_t I, size_t) {
    std::string Key = "key" + std::to_string(I % KeyRange);
    SolverResult Out;
    if (Cache.lookup(Key, 7, Out)) {
      // An entry must round-trip the value stored for its key.
      if (Out.Stats.Iterations != I % KeyRange)
        BadValues.fetch_add(1);
    } else {
      SolverResult R;
      R.Satisfiable = true;
      R.Stats.Iterations = I % KeyRange;
      Cache.store(Key, 7, R);
    }
  });
  EXPECT_EQ(BadValues.load(), 0u);

  CacheStats S = Cache.stats();
  EXPECT_EQ(S.Hits + S.Misses, Ops);
  EXPECT_LE(Cache.size(), Capacity);
  EXPECT_EQ(S.Insertions - S.Evictions, Cache.size());
}

// Satellite of the fixpoint-sharing PR: saveCache walks the cache with
// forEachEntry while a parallel batch may still be publishing. The walk
// must stay coherent under concurrent stores — every visited entry is
// internally consistent, and every entry present before the walk and
// never evicted is visited.
TEST(ShardedResultCache, ForEachEntryUnderConcurrentStores) {
  ShardedResultCache Cache(512, 8);
  // Pre-populate a stable set that eviction cannot touch (capacity is
  // larger than everything the test inserts).
  constexpr size_t Stable = 64, Churn = 256, Ops = 4000;
  for (size_t I = 0; I < Stable; ++I) {
    SolverResult R;
    R.Satisfiable = true;
    R.Stats.Iterations = I;
    Cache.store("stable" + std::to_string(I), 1, R);
  }
  WorkerPool Pool(8);
  std::atomic<size_t> Bad{0};
  Pool.parallelFor(Ops, [&](size_t I, size_t W) {
    if (W == 0) {
      // One worker repeatedly walks while the others store.
      size_t StableSeen = 0;
      Cache.forEachEntry([&](const std::string &Key, uint32_t OptsKey,
                             const SolverResult &R) {
        if (OptsKey == 1) {
          ++StableSeen;
          // Stable entries must round-trip their payload.
          if (Key != "stable" + std::to_string(R.Stats.Iterations))
            Bad.fetch_add(1);
        } else if (OptsKey != 2) {
          Bad.fetch_add(1);
        }
      });
      if (StableSeen != Stable)
        Bad.fetch_add(1);
    } else {
      SolverResult R;
      R.Stats.Iterations = I % Churn;
      Cache.store("churn" + std::to_string(I % Churn), 2, R);
    }
  });
  EXPECT_EQ(Bad.load(), 0u);
}

TEST(SharedFixpointStore, ForEachEntryUnderConcurrentPublishes) {
  SharedFixpointStore Store(128, 8);
  WorkerPool Pool(8);
  std::atomic<size_t> Bad{0};
  Pool.parallelFor(4000, [&](size_t I, size_t W) {
    if (W == 0) {
      Store.forEachEntry([&](const std::string &Sig, uint32_t,
                             const FixpointSeedData &Data) {
        // Every publisher of signature k offers exactly k % 7 + 1
        // snapshots, so a coherent walk sees exactly that length.
        size_t K = std::stoul(Sig.substr(3));
        if (Data.Snapshots.size() != K % 7 + 1)
          Bad.fetch_add(1);
      });
    } else {
      size_t K = I % 100;
      auto Data = std::make_shared<FixpointSeedData>();
      Data->Converged = false;
      for (size_t J = 0; J < K % 7 + 1; ++J)
        Data->Snapshots.push_back(BddSnapshot{});
      Store.publish("sig" + std::to_string(K), 0, std::move(Data));
    }
  });
  EXPECT_EQ(Bad.load(), 0u);
  EXPECT_LE(Store.size(), 128u);
}

TEST(ShardedResultCache, MultiShardConcurrentMixedUse) {
  ShardedResultCache Cache(256, 8);
  WorkerPool Pool(4);
  Pool.parallelFor(4000, [&](size_t I, size_t) {
    std::string Key = "q" + std::to_string(I % 100);
    SolverResult Out;
    if (!Cache.lookup(Key, 0, Out)) {
      SolverResult R;
      R.Stats.Iterations = I % 100;
      Cache.store(Key, 0, R);
    } else {
      EXPECT_EQ(Out.Stats.Iterations, I % 100);
    }
  });
  CacheStats S = Cache.stats();
  EXPECT_EQ(S.Hits + S.Misses, 4000u);
  EXPECT_LE(Cache.size(), 256u);
}

//===----------------------------------------------------------------------===//
// Parallel batch dispatch
//===----------------------------------------------------------------------===//

/// A mixed workload touching every shape of determinism risk: duplicate
/// requests, both directions of a containment (semantic overlap between
/// distinct requests), a model-bearing satisfiable overlap, raw Lµ sat,
/// a DTD-constrained query, and an error response.
const char *mixedInput() {
  return
      R"({"id":"q1","op":"contains","e1":"/a/b","e2":"//b"})" "\n"
      R"({"id":"q2","op":"overlap","e1":"//a","e2":"//b"})" "\n"
      R"({"id":"q3","op":"empty","e1":"a/b[parent::c]"})" "\n"
      R"({"id":"q4","op":"contains","e1":"/a/b","e2":"//b"})" "\n"
      R"json({"id":"q5","op":"sat","f":"<1>(a & <2>b)"})json" "\n"
      R"({"id":"q6","op":"overlap","e1":"//b","e2":"/a/b"})" "\n"
      R"({"id":"q7","op":"equiv","e1":"/a/b","e2":"/a/b[c] | /a/b[not(c)]"})" "\n"
      R"({"id":"q8","op":"empty","e1":"//unknown","dtd":"wikipedia"})" "\n"
      R"({"id":"q9","op":"contains","e1":"//b"})" "\n"; // error: missing e2
}

TEST(ParallelBatch, WarmMultiThreadOutputByteIdenticalToSerial) {
  AnalysisSession Session;
  // Cold run (jobs=1) populates the shared cache.
  runLinesRaw(Session, mixedInput());

  // Warm serial vs warm 4-worker: the full JSON-lines output, timing
  // fields included, must be byte-identical — every response is served
  // from the same shared cache entries.
  std::string WarmSerial = runLinesRaw(Session, mixedInput());
  Session.setJobs(4);
  std::string WarmParallel = runLinesRaw(Session, mixedInput());
  EXPECT_EQ(WarmSerial, WarmParallel);

  // No new solver runs happened in either warm pass.
  SessionStats S = Session.stats();
  EXPECT_GT(S.Cache.Hits, 0u);
}

TEST(ParallelBatch, ColdStableOutputIndependentOfJobCount) {
  // Two fresh sessions, 1 vs 4 workers, stable encoding (no cache /
  // time_ms fields): output must be byte-identical even though the
  // parallel session computes on four independent FormulaFactories.
  AnalysisSession Serial;
  std::string OutSerial = runLinesRaw(Serial, mixedInput(), /*Stable=*/true);

  SessionOptions POpts;
  POpts.Jobs = 4;
  AnalysisSession Parallel(POpts);
  std::string OutParallel =
      runLinesRaw(Parallel, mixedInput(), /*Stable=*/true);
  EXPECT_EQ(OutSerial, OutParallel);
}

TEST(ParallelBatch, StableOutputByteIdenticalWithTracingEnabled) {
  // The tracer's determinism contract (obs/Trace.h): spans observe, they
  // never decide, so --stable output at any job count must be
  // byte-identical with tracing on or off.
  SessionOptions Opts;
  Opts.Jobs = 4;
  AnalysisSession Untraced(Opts);
  std::string OutUntraced =
      runLinesRaw(Untraced, mixedInput(), /*Stable=*/true);

  Tracer::global().start();
  AnalysisSession Traced(Opts);
  std::string OutTraced = runLinesRaw(Traced, mixedInput(), /*Stable=*/true);
  Tracer::global().stop();

  EXPECT_EQ(OutUntraced, OutTraced);
  // Tracing did actually happen — the batch produced spans.
  EXPECT_GT(Tracer::global().eventCount(), 0u);
}

TEST(ParallelBatch, TracingAddsStageBreakdownToVolatileOutputOnly) {
  // Non-stable responses gain a per-request "stages" object while the
  // tracer runs; stable responses never carry it.
  SessionOptions Opts;
  Opts.Jobs = 2;
  Tracer::global().start();
  AnalysisSession Session(Opts);
  std::string Volatile = runLinesRaw(Session, mixedInput());
  AnalysisSession Stable(Opts);
  std::string StableOut = runLinesRaw(Stable, mixedInput(), /*Stable=*/true);
  Tracer::global().stop();
  EXPECT_NE(Volatile.find("\"stages\""), std::string::npos);
  EXPECT_EQ(StableOut.find("\"stages\""), std::string::npos);
}

TEST(ParallelBatch, DuplicateRequestsReportedAsHitsLikeSerial) {
  SessionOptions Opts;
  Opts.Jobs = 4;
  AnalysisSession Session(Opts);
  std::vector<AnalysisRequest> Reqs = {
      containsReq("a", "/a/b", "//b"),
      containsReq("b", "//b", "/a/b"),
      containsReq("a2", "/a/b", "//b"),
      containsReq("b2", "//b", "/a/b"),
  };
  std::vector<AnalysisResponse> Resps = runBatch(Session, Reqs);
  ASSERT_EQ(Resps.size(), 4u);
  for (const AnalysisResponse &R : Resps)
    EXPECT_TRUE(R.Ok) << R.Error;
  // The textual duplicates are answered as cache hits of the first
  // occurrence, exactly like a serial run through the semantic cache.
  EXPECT_FALSE(Resps[0].FromCache);
  EXPECT_FALSE(Resps[1].FromCache);
  EXPECT_TRUE(Resps[2].FromCache);
  EXPECT_TRUE(Resps[3].FromCache);
  EXPECT_EQ(Resps[2].Holds, Resps[0].Holds);
  EXPECT_EQ(Resps[3].Holds, Resps[1].Holds);
  EXPECT_EQ(Resps[2].Id, "a2");
  EXPECT_EQ(Resps[3].Id, "b2");
}

TEST(ParallelBatch, StatsExactUnderConcurrentDispatch) {
  // K distinct one-problem requests across 4 workers: the atomic
  // counters must account for exactly K solver runs and K misses.
  constexpr size_t K = 12;
  SessionOptions Opts;
  Opts.Jobs = 4;
  AnalysisSession Session(Opts);
  std::vector<AnalysisRequest> Reqs;
  for (size_t I = 0; I < K; ++I) {
    AnalysisRequest R;
    R.Id = "s" + std::to_string(I);
    R.Kind = RequestKind::Emptiness;
    R.Query1 = "/r" + std::to_string(I) + "/x";
    Reqs.push_back(R);
  }
  std::vector<AnalysisResponse> Resps = runBatch(Session, Reqs);
  for (const AnalysisResponse &R : Resps)
    EXPECT_TRUE(R.Ok) << R.Error;
  SessionStats S = Session.stats();
  EXPECT_EQ(S.Solves, K);
  EXPECT_EQ(S.Cache.Misses, K);
  EXPECT_EQ(S.Cache.Insertions, K);
  EXPECT_EQ(S.Cache.Hits, 0u);
  EXPECT_EQ(S.QueriesParsed, K) << "each distinct query parsed once";
}

TEST(ParallelBatch, ConfigLineSwitchesJobsMidStream) {
  const std::string Input =
      R"({"id":"q1","op":"empty","e1":"//b"})" "\n"
      R"({"id":"cfg","op":"config","jobs":3})" "\n"
      R"({"id":"q2","op":"empty","e1":"//c"})" "\n";
  AnalysisSession Session;
  EXPECT_EQ(Session.jobs(), 1u);
  std::vector<JsonRef> Resps = runLines(Session, Input);
  ASSERT_EQ(Resps.size(), 3u);
  EXPECT_TRUE(Resps[0]->get("ok")->asBool());
  EXPECT_TRUE(Resps[1]->get("ok")->asBool());
  EXPECT_EQ(Resps[1]->get("jobs")->asNumber(), 3);
  EXPECT_EQ(Resps[1]->str("id"), "cfg");
  EXPECT_TRUE(Resps[2]->get("ok")->asBool());
  EXPECT_EQ(Session.jobs(), 3u);

  // A config line without 'jobs' is an error response, not a stop.
  std::vector<JsonRef> Bad =
      runLines(Session, R"({"op":"config"})" "\n");
  ASSERT_EQ(Bad.size(), 1u);
  EXPECT_FALSE(Bad[0]->get("ok")->asBool());
}

//===----------------------------------------------------------------------===//
// Persistent cache
//===----------------------------------------------------------------------===//

TEST(PersistentCache, SaveLoadWarmsAFreshSession) {
  std::string Path = testing::TempDir() + "xsa_service_test_cache.jsonl";
  std::remove(Path.c_str());

  AnalysisSession A;
  runLinesRaw(A, mixedInput());
  std::string WarmA = runLinesRaw(A, mixedInput(), /*Stable=*/true);
  size_t SolvesA = A.stats().Solves;
  EXPECT_GT(SolvesA, 0u);
  std::string Error;
  ASSERT_TRUE(A.saveCache(Path, Error)) << Error;

  // A fresh session loaded from disk answers the whole batch without a
  // single solver run, with the same deterministic payload.
  AnalysisSession B;
  ASSERT_TRUE(B.loadCache(Path, Error)) << Error;
  std::string WarmB = runLinesRaw(B, mixedInput(), /*Stable=*/true);
  EXPECT_EQ(WarmA, WarmB);
  EXPECT_EQ(B.stats().Solves, 0u) << "every result came from the loaded cache";
  EXPECT_EQ(B.stats().Cache.Misses, 0u);

  // Loading junk fails cleanly.
  AnalysisSession C;
  EXPECT_FALSE(C.loadCache("/nonexistent/cache.jsonl", Error));
  std::remove(Path.c_str());
}

TEST(PersistentCache, SaveLoadRoundTripPreservesEntryCount) {
  std::string Path = testing::TempDir() + "xsa_service_test_cache2.jsonl";
  std::remove(Path.c_str());
  AnalysisSession A;
  runLinesRaw(A, mixedInput());
  size_t Size = A.resultCache().size();
  EXPECT_GT(Size, 0u);
  std::string Error;
  ASSERT_TRUE(A.saveCache(Path, Error)) << Error;
  AnalysisSession B;
  ASSERT_TRUE(B.loadCache(Path, Error)) << Error;
  EXPECT_EQ(B.resultCache().size(), Size);
  std::remove(Path.c_str());
}

TEST(PersistentCache, VersionHeaderIsEnforced) {
  std::string Path = testing::TempDir() + "xsa_service_test_ver.jsonl";
  auto WriteFile = [&](const std::string &Content) {
    std::ofstream Out(Path, std::ios::trunc);
    Out << Content;
  };
  std::string Error;

  // A v1 file (results only) still loads.
  WriteFile("{\"xsa_cache\":1}\n"
            "{\"k\":\"legacy-key\",\"o\":3,\"sat\":true,\"lean\":4,"
            "\"iter\":2,\"bdd\":10,\"time_ms\":0.5}\n");
  AnalysisSession V1;
  ASSERT_TRUE(V1.loadCache(Path, Error)) << Error;
  EXPECT_EQ(V1.resultCache().size(), 1u);

  // An unknown future version is rejected outright, not half-parsed.
  WriteFile("{\"xsa_cache\":99}\n{\"k\":\"x\",\"o\":0,\"sat\":true}\n");
  AnalysisSession V99;
  EXPECT_FALSE(V99.loadCache(Path, Error));
  EXPECT_NE(Error.find("unsupported"), std::string::npos) << Error;
  EXPECT_EQ(V99.resultCache().size(), 0u);

  // A non-numeric version is not a cache file.
  WriteFile("{\"xsa_cache\":\"two\"}\n");
  AnalysisSession Bad;
  EXPECT_FALSE(Bad.loadCache(Path, Error));
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// Cross-request fixpoint sharing
//===----------------------------------------------------------------------===//

/// Same-shaped requests over per-index alphabets: textually distinct,
/// semantically distinct, but every lean is isomorphic within a shape —
/// the workload fixpoint sharing exists for.
std::string nearDuplicateInput(size_t Groups, size_t Offset = 0) {
  std::string In;
  for (size_t I = Offset; I < Offset + Groups; ++I) {
    std::string N = std::to_string(I);
    In += "{\"id\":\"c" + N + "\",\"op\":\"contains\",\"e1\":\"/a" + N +
          "/b" + N + "\",\"e2\":\"//b" + N + "\"}\n";
    In += "{\"id\":\"o" + N + "\",\"op\":\"overlap\",\"e1\":\"//a" + N +
          "/b" + N + "\",\"e2\":\"//b" + N + "[c" + N + "]\"}\n";
  }
  return In;
}

TEST(FixpointSharing, SharingIsOutputInvisibleAndSkipsIterations) {
  std::string Input = nearDuplicateInput(4);
  AnalysisSession Off;
  std::string OutOff = runLinesRaw(Off, Input, /*Stable=*/true);

  SessionOptions SOpts;
  SOpts.ShareFixpoints = true;
  AnalysisSession On(SOpts);
  std::string OutOn = runLinesRaw(On, Input, /*Stable=*/true);
  EXPECT_EQ(OutOff, OutOn) << "sharing must not change any response byte";

  SessionStats S = On.stats();
  EXPECT_GT(S.FixpointSeededRuns, 0u);
  EXPECT_GT(S.FixpointIterationsReplayed, 0u);
  EXPECT_GT(S.Fixpoints.Hits, 0u);
  // The semantic iteration totals agree; only the computed share drops.
  EXPECT_EQ(S.SolverIterations, Off.stats().SolverIterations);
  EXPECT_LT(S.SolverIterations - S.FixpointIterationsReplayed,
            S.SolverIterations);
}

TEST(FixpointSharing, ColdParallelSeededOutputMatchesSerial) {
  // The acceptance criterion: with sharing on, an N-thread cold batch is
  // byte-identical to the 1-thread run under --stable encoding, even
  // though which runs get seeded differs with scheduling.
  std::string Input = nearDuplicateInput(6);
  SessionOptions Serial;
  Serial.ShareFixpoints = true;
  AnalysisSession S1(Serial);
  std::string Out1 = runLinesRaw(S1, Input, /*Stable=*/true);

  SessionOptions Parallel = Serial;
  Parallel.Jobs = 4;
  AnalysisSession S4(Parallel);
  std::string Out4 = runLinesRaw(S4, Input, /*Stable=*/true);
  EXPECT_EQ(Out1, Out4);
}

TEST(FixpointSharing, ConfigLineTogglesSharingMidStream) {
  AnalysisSession Session;
  EXPECT_FALSE(Session.shareFixpointsEnabled());
  std::vector<JsonRef> Resps = runLines(
      Session, "{\"op\":\"config\",\"share_fixpoints\":true}\n" +
                   nearDuplicateInput(2));
  ASSERT_GE(Resps.size(), 1u);
  EXPECT_TRUE(Resps[0]->get("ok")->asBool());
  EXPECT_TRUE(Resps[0]->get("share_fixpoints")->asBool());
  EXPECT_TRUE(Session.shareFixpointsEnabled());
  EXPECT_GT(Session.stats().FixpointSeededRuns, 0u);
}

TEST(FixpointSharing, PersistedSequencesSeedARestartedSession) {
  // save → load → a batch of *unseen* same-shaped queries: the result
  // cache misses (new texts) but every run seeds from the loaded store,
  // and the --stable output is byte-identical to an unshared session's.
  std::string Path = testing::TempDir() + "xsa_service_test_fx.jsonl";
  std::remove(Path.c_str());
  SessionOptions SOpts;
  SOpts.ShareFixpoints = true;
  {
    AnalysisSession A(SOpts);
    runLinesRaw(A, nearDuplicateInput(3));
    EXPECT_GT(A.fixpointStore().size(), 0u);
    std::string Error;
    ASSERT_TRUE(A.saveCache(Path, Error)) << Error;
  }

  std::string Unseen = nearDuplicateInput(3, /*Offset=*/100);
  AnalysisSession Plain;
  std::string Expected = runLinesRaw(Plain, Unseen, /*Stable=*/true);

  AnalysisSession B(SOpts);
  std::string Error;
  ASSERT_TRUE(B.loadCache(Path, Error)) << Error;
  EXPECT_GT(B.fixpointStore().size(), 0u);
  std::string Got = runLinesRaw(B, Unseen, /*Stable=*/true);
  EXPECT_EQ(Expected, Got);
  SessionStats S = B.stats();
  EXPECT_EQ(S.Cache.Hits, 0u) << "unseen texts cannot hit the result cache";
  EXPECT_GT(S.FixpointSeededRuns, 0u)
      << "every run shares a lean with a persisted sequence";
  std::remove(Path.c_str());
}

TEST(PersistentCache, OptimizedFormsSurviveARestart) {
  // An optimize pre-pass session persists its proved rewrites; a
  // restarted session applies them without a single proof obligation.
  std::string Path = testing::TempDir() + "xsa_service_test_oq.jsonl";
  std::remove(Path.c_str());
  const std::string Input =
      R"({"id":"q1","op":"empty","e1":"a//b"})" "\n";
  SessionOptions SOpts;
  SOpts.Optimize = true;
  std::string Expected;
  {
    AnalysisSession A(SOpts);
    Expected = runLinesRaw(A, Input, /*Stable=*/true);
    EXPECT_GT(A.stats().RewriteChecks, 0u);
    EXPECT_GT(A.optimizeSeeds().size(), 0u);
    std::string Error;
    ASSERT_TRUE(A.saveCache(Path, Error)) << Error;
  }
  AnalysisSession B(SOpts);
  std::string Error;
  ASSERT_TRUE(B.loadCache(Path, Error)) << Error;
  // Fresh result cache entries were loaded too; the point here is that
  // the *rewrite* is not re-derived.
  EXPECT_EQ(runLinesRaw(B, Input, /*Stable=*/true), Expected);
  SessionStats S = B.stats();
  EXPECT_EQ(S.RewriteChecks, 0u) << "no proof obligations after restart";
  EXPECT_GT(S.OptimizeSeedHits, 0u);
  std::remove(Path.c_str());
}

TEST(PersistentCache, OptimizedFormsAreKeyedToDtdContent) {
  // A persisted rewrite proved under one DTD file must not be applied
  // after the file's content changes: the fingerprint misses and the
  // pre-pass re-derives (and re-proves) under the new content.
  std::string DtdPath = testing::TempDir() + "xsa_oq_test.dtd";
  std::string Path = testing::TempDir() + "xsa_service_test_oq2.jsonl";
  std::remove(Path.c_str());
  auto WriteDtd = [&](const char *Content) {
    std::ofstream Out(DtdPath, std::ios::trunc);
    Out << Content;
  };
  const std::string Input = "{\"id\":\"q\",\"op\":\"empty\",\"e1\":"
                            "\"r//x\",\"dtd\":\"" +
                            DtdPath + "\"}\n";
  SessionOptions SOpts;
  SOpts.Optimize = true;

  WriteDtd("<!ELEMENT r (x)>\n<!ELEMENT x EMPTY>\n");
  {
    AnalysisSession A(SOpts);
    runLinesRaw(A, Input);
    EXPECT_GT(A.optimizeSeeds().size(), 0u);
    std::string Error;
    ASSERT_TRUE(A.saveCache(Path, Error)) << Error;
  }

  // Same content: the seed applies, nothing is re-proved.
  {
    AnalysisSession B(SOpts);
    std::string Error;
    ASSERT_TRUE(B.loadCache(Path, Error)) << Error;
    runLinesRaw(B, Input);
    EXPECT_GT(B.stats().OptimizeSeedHits, 0u);
    EXPECT_EQ(B.stats().RewriteChecks, 0u);
  }

  // Changed content under the same name: the seed must miss.
  WriteDtd("<!ELEMENT r (x|y)>\n<!ELEMENT x EMPTY>\n<!ELEMENT y EMPTY>\n");
  {
    AnalysisSession C(SOpts);
    std::string Error;
    ASSERT_TRUE(C.loadCache(Path, Error)) << Error;
    runLinesRaw(C, Input);
    EXPECT_EQ(C.stats().OptimizeSeedHits, 0u)
        << "a stale proof must not be resurrected";
    EXPECT_GT(C.stats().QueriesOptimized, 0u) << "re-derived instead";
  }
  std::remove(Path.c_str());
  std::remove(DtdPath.c_str());
}

//===----------------------------------------------------------------------===//
// Fixpoint scheduling strategies (service surface)
//===----------------------------------------------------------------------===//

TEST(FixpointStrategyService, StableOutputByteIdenticalAcrossStrategiesAndJobs) {
  // The acceptance criterion of the strategy engine: --stable responses
  // (verdict, lean, model) must be byte-identical under every strategy,
  // Auto included, at jobs 1 and 4.
  std::string Input = nearDuplicateInput(4);
  AnalysisSession Base;
  std::string Expected = runLinesRaw(Base, Input, /*Stable=*/true);
  for (FixpointStrategy S :
       {FixpointStrategy::Bfs, FixpointStrategy::Chaining,
        FixpointStrategy::Saturation, FixpointStrategy::Auto}) {
    for (size_t Jobs : {1, 4}) {
      SessionOptions SOpts;
      SOpts.Solver.Strategy = S;
      SOpts.Jobs = Jobs;
      AnalysisSession Session(SOpts);
      std::string Got = runLinesRaw(Session, Input, /*Stable=*/true);
      EXPECT_EQ(Expected, Got)
          << fixpointStrategyName(S) << " at jobs=" << Jobs;
    }
  }
}

TEST(FixpointStrategyService, ConfigLineSwitchesStrategyMidStream) {
  AnalysisSession Session;
  EXPECT_EQ(Session.fixpointStrategy(), FixpointStrategy::Bfs);
  std::vector<JsonRef> Resps = runLines(
      Session,
      "{\"id\":\"cfg\",\"op\":\"config\",\"fixpoint_strategy\":"
      "\"chaining\"}\n" +
          nearDuplicateInput(2));
  ASSERT_GE(Resps.size(), 2u);
  EXPECT_TRUE(Resps[0]->get("ok")->asBool());
  EXPECT_EQ(Resps[0]->str("fixpoint_strategy"), "chaining");
  EXPECT_EQ(Session.fixpointStrategy(), FixpointStrategy::Chaining);
  // Every solver run after the switch executed under Chaining, and the
  // cumulative stats say so.
  SessionStats S = Session.stats();
  EXPECT_GT(S.Solves, 0u);
  EXPECT_EQ(S.StrategyRuns[static_cast<size_t>(FixpointStrategy::Chaining)],
            S.Solves);
  EXPECT_GT(S.SolverSubSteps, 0u);
  EXPECT_GE(S.SolverSubSteps, S.SolverIterations)
      << "chained rounds take at least one sub-step each";
}

TEST(FixpointStrategyService, InvalidStrategyValueIsStructurallyRejected) {
  AnalysisSession Session;
  std::vector<JsonRef> Resps = runLines(
      Session,
      "{\"id\":\"bad\",\"op\":\"config\",\"fixpoint_strategy\":"
      "\"chainning\"}\n"
      "{\"id\":\"worse\",\"op\":\"config\",\"fixpoint_strategy\":7}\n");
  ASSERT_EQ(Resps.size(), 2u);
  for (const JsonRef &R : Resps) {
    EXPECT_FALSE(R->get("ok")->asBool());
    JsonRef E = R->get("error");
    ASSERT_EQ(E->type(), JsonValue::Type::Object);
    EXPECT_EQ(E->str("code"), "invalid_config_value");
    EXPECT_EQ(E->str("key"), "fixpoint_strategy");
    EXPECT_NE(E->str("message").find("expected bfs"), std::string::npos);
  }
  EXPECT_EQ(Resps[0]->get("error")->str("value"), "chainning");
  // The typo must not have left a half-applied strategy in force.
  EXPECT_EQ(Session.fixpointStrategy(), FixpointStrategy::Bfs);

  // Volatile responses carry the strategy actually used per request.
  std::vector<JsonRef> Run = runLines(Session, nearDuplicateInput(1));
  ASSERT_GE(Run.size(), 1u);
  EXPECT_EQ(Run[0]->str("strategy"), "bfs");
}

TEST(PersistentCache, RememberedStrategyChoicesSurviveARestart) {
  // An Auto session memoizes its per-lean choice in the shared store;
  // save → load must hand the same choices to a restarted session so
  // its runs are keyed (and replayed) consistently from the start.
  std::string Path = testing::TempDir() + "xsa_service_test_st.jsonl";
  std::remove(Path.c_str());
  SessionOptions SOpts;
  SOpts.Solver.Strategy = FixpointStrategy::Auto;
  std::vector<std::pair<std::string, FixpointStrategy>> Saved;
  {
    AnalysisSession A(SOpts);
    runLinesRaw(A, nearDuplicateInput(3));
    A.strategyChoices().forEachEntry(
        [&](const std::string &Sig, FixpointStrategy S) {
          Saved.emplace_back(Sig, S);
        });
    ASSERT_GT(Saved.size(), 0u) << "Auto must remember its choices";
    std::string Error;
    ASSERT_TRUE(A.saveCache(Path, Error)) << Error;
  }

  AnalysisSession B(SOpts);
  std::string Error;
  ASSERT_TRUE(B.loadCache(Path, Error)) << Error;
  EXPECT_EQ(B.strategyChoices().size(), Saved.size());
  for (const auto &[Sig, S] : Saved) {
    FixpointStrategy Loaded;
    ASSERT_TRUE(B.strategyChoices().lookup(Sig, Loaded)) << Sig;
    EXPECT_EQ(Loaded, S) << Sig;
  }

  // And the choices are actually honoured: an unseen same-shaped batch
  // resolves through the loaded memo, with output identical to a plain
  // session's.
  std::string Unseen = nearDuplicateInput(3, /*Offset=*/200);
  AnalysisSession Plain;
  std::string Expected = runLinesRaw(Plain, Unseen, /*Stable=*/true);
  EXPECT_EQ(runLinesRaw(B, Unseen, /*Stable=*/true), Expected);
  std::remove(Path.c_str());
}

TEST(PersistentCache, SaveLoadSaveIsByteIdentical) {
  // A save → load → save round trip must be a fixpoint of the file
  // format: entries (including the "st" strategy-choice lines) are
  // sorted and deduplicated on save, so reloading a file and saving it
  // again reproduces it byte for byte — repeated server drains never
  // grow or reorder the cache file.
  std::string P1 = testing::TempDir() + "xsa_service_test_rt1.jsonl";
  std::string P2 = testing::TempDir() + "xsa_service_test_rt2.jsonl";
  SessionOptions SOpts;
  SOpts.Solver.Strategy = FixpointStrategy::Auto;
  std::string Error;
  {
    AnalysisSession A(SOpts);
    runLinesRaw(A, nearDuplicateInput(4));
    ASSERT_TRUE(A.saveCache(P1, Error)) << Error;
  }
  AnalysisSession B(SOpts);
  ASSERT_TRUE(B.loadCache(P1, Error)) << Error;
  ASSERT_TRUE(B.saveCache(P2, Error)) << Error;

  auto Slurp = [](const std::string &Path) {
    std::ifstream In(Path);
    std::ostringstream S;
    S << In.rdbuf();
    return S.str();
  };
  std::string First = Slurp(P1);
  ASSERT_FALSE(First.empty());
  EXPECT_EQ(Slurp(P2), First);
  std::remove(P1.c_str());
  std::remove(P2.c_str());
}

//===----------------------------------------------------------------------===//
// Protocol hardening (shared by `xsolve batch` and xsolved)
//===----------------------------------------------------------------------===//

TEST(BatchJsonLines, StructuredErrorsCarryLineAndBytePositions) {
  const std::string Input =
      R"({"id":"ok","op":"empty","e1":"//b"})" "\n"
      "{\"op\":\"contains\",,}\n"; // parse error on line 2
  AnalysisSession Session;
  std::vector<JsonRef> Resps = runLines(Session, Input);
  ASSERT_EQ(Resps.size(), 2u);
  EXPECT_TRUE(Resps[0]->get("ok")->asBool());
  EXPECT_FALSE(Resps[1]->get("ok")->asBool());
  JsonRef E = Resps[1]->get("error");
  ASSERT_EQ(E->type(), JsonValue::Type::Object);
  EXPECT_EQ(E->str("code"), "bad_request");
  EXPECT_EQ(E->get("line")->asNumber(), 2);
  EXPECT_GT(E->get("byte")->asNumber(), 0);
}

TEST(BatchJsonLines, OversizedLinesAreRejectedWithoutAbortingTheStream) {
  // A line past the bound is consumed (never buffered whole), answered
  // with a structured bad_request carrying its line number, and the
  // lines after it still run.
  std::string Long = R"({"id":"big","op":"empty","e1":"//)" +
                     std::string(300, 'a') + "\"}";
  const std::string Input =
      R"({"id":"ok1","op":"empty","e1":"//b"})" "\n" + Long + "\n" +
      R"({"id":"ok2","op":"empty","e1":"//c"})" "\n";
  AnalysisSession Session;
  std::istringstream In(Input);
  std::ostringstream Out;
  size_t Failed = 0;
  BatchStreamOptions Opts;
  Opts.MaxLineBytes = 128;
  runBatchJsonLines(Session, In, Out, &Failed, Opts);
  EXPECT_EQ(Failed, 1u);
  std::vector<JsonRef> Resps;
  std::istringstream Parse(Out.str());
  std::string Line;
  std::string Err;
  while (std::getline(Parse, Line))
    Resps.push_back(parseJson(Line, Err));
  ASSERT_EQ(Resps.size(), 3u);
  EXPECT_TRUE(Resps[0]->get("ok")->asBool());
  EXPECT_FALSE(Resps[1]->get("ok")->asBool());
  JsonRef E = Resps[1]->get("error");
  ASSERT_EQ(E->type(), JsonValue::Type::Object);
  EXPECT_EQ(E->str("code"), "bad_request");
  EXPECT_NE(E->str("message").find("exceeds"), std::string::npos);
  EXPECT_EQ(E->get("line")->asNumber(), 2);
  EXPECT_TRUE(Resps[2]->get("ok")->asBool()) << "stream must continue";
}

TEST(BatchJsonLines, StopFlagEndsTheStreamBetweenLines) {
  // The drain flag `xsolve batch` flips on SIGINT/SIGTERM: once set, no
  // further input lines are consumed and the driver returns normally
  // (the caller then flushes its cache file on the usual exit path).
  const std::string Input =
      R"({"id":"q1","op":"empty","e1":"//b"})" "\n"
      R"({"id":"q2","op":"empty","e1":"//c"})" "\n";
  AnalysisSession Session;
  std::istringstream In(Input);
  std::ostringstream Out;
  std::atomic<bool> Stop{true};
  BatchStreamOptions Opts;
  Opts.Stop = &Stop;
  runBatchJsonLines(Session, In, Out, nullptr, Opts);
  EXPECT_EQ(Out.str(), "") << "no lines consumed after the stop flag";
  EXPECT_EQ(Session.stats().Solves, 0u);
}

} // namespace
