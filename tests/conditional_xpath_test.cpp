//===- conditional_xpath_test.cpp - Conditional XPath (Marx) --------------===//
//
// The paper's conclusion states the solver "can also support conditional
// XPath proposed in [34]" (Marx 2004) — path iteration (p)+. This suite
// covers the extension end to end: parsing, concrete semantics, the
// µ-translation, agreement between them (the Prop 5.1 property extended
// to iteration), and solver-level laws such as (child::*)+ ≡ descendant.
//
//===----------------------------------------------------------------------===//

#include "analysis/Problems.h"
#include "logic/CycleFree.h"
#include "logic/Eval.h"
#include "tree/Xml.h"
#include "xpath/Compile.h"
#include "xpath/Eval.h"
#include "xpath/Parser.h"

#include <gtest/gtest.h>

#include <random>

using namespace xsa;

namespace {

ExprRef xp(const std::string &S) {
  std::string Err;
  ExprRef E = parseXPath(S, Err);
  EXPECT_NE(E, nullptr) << Err << " in: " << S;
  return E;
}

Document doc(const std::string &Xml) {
  Document D;
  std::string Err;
  EXPECT_TRUE(parseXml(Xml, D, Err)) << Err;
  return D;
}

TEST(ConditionalXPath, ParseAndPrint) {
  EXPECT_EQ(toString(xp("(a)+")), "(child::a)+");
  EXPECT_EQ(toString(xp("(a/b)+/c")), "(child::a/child::b)+/child::c");
  EXPECT_EQ(toString(xp("(a[b])+")), "(child::a[child::b])+");
  // Round trips.
  ExprRef E = xp("x/(a | b)+/y");
  EXPECT_EQ(toString(E), toString(xp(toString(E))));
}

TEST(ConditionalXPath, ConcreteSemantics) {
  // r[a[a[a[b]] b] c]: ids r=0 a=1 a=2 a=3 b=4 b=5 c=6.
  Document D = doc("<r><a><a><a><b/></a></a><b/></a><c/></r>");
  // (child::a)+ from r: the a-chain 1, 2, 3.
  EXPECT_EQ(evalXPath(D, xp("(a)+"), 0), (NodeSet{1, 2, 3}));
  // One or more, not zero or more: the context itself is excluded.
  EXPECT_FALSE(evalXPath(D, xp("(a)+"), 0).count(0));
  // Iterated composite step.
  EXPECT_EQ(evalXPath(D, xp("(a/a)+"), 0), (NodeSet{2}));
  // Iteration then a step.
  EXPECT_EQ(evalXPath(D, xp("(a)+/b"), 0), (NodeSet{4, 5}));
  // Conditional iteration: only a's having a b child.
  EXPECT_EQ(evalXPath(D, xp("(a[b])+"), 0), (NodeSet{1}));
}

TEST(ConditionalXPath, TranslationIsCycleFreeAndCorrect) {
  FormulaFactory FF;
  const char *Cases[] = {
      "(a)+", "(a/b)+", "(a[b])+/c", "(a)+/(b)+", "x/(a | b)+",
      "(foll-sibling::a)+", "(parent::*)+",
  };
  std::mt19937 Rng(11);
  const char *Labels[] = {"a", "b", "c", "x"};
  for (int Round = 0; Round < 12; ++Round) {
    Document D;
    int N = 1 + static_cast<int>(Rng() % 10);
    for (int I = 0; I < N; ++I) {
      NodeId Parent =
          D.empty() ? InvalidNodeId : static_cast<NodeId>(Rng() % D.size());
      D.addNode(Labels[Rng() % 4], Parent);
    }
    D.setMark(static_cast<NodeId>(Rng() % D.size()));
    for (const char *Src : Cases) {
      ExprRef E = xp(Src);
      Formula Psi = compileXPath(FF, E, FF.trueF());
      EXPECT_TRUE(isCycleFree(Psi)) << Src;
      DynBitset FromFormula = evalFormula(D, FF, Psi);
      NodeSet FromEval = evalXPath(D, E);
      for (NodeId Node = 0; Node < static_cast<NodeId>(D.size()); ++Node)
        EXPECT_EQ(FromFormula.test(Node), FromEval.count(Node) != 0)
            << Src << " at node " << Node;
    }
  }
}

TEST(ConditionalXPath, NonProgressingIterationIsRejected) {
  // (self::a)+ does not progress; its translation is not cycle free
  // (unguarded fixpoint), which is exactly the solver's precondition.
  FormulaFactory FF;
  Formula Psi = compileXPath(FF, xp("(self::a)+"), FF.trueF());
  EXPECT_FALSE(isCycleFree(Psi));
  // Mixed up-down iteration is likewise rejected.
  Formula UpDown = compileXPath(FF, xp("(a/..)+"), FF.trueF());
  EXPECT_FALSE(isCycleFree(UpDown));
}

TEST(ConditionalXPath, SolverLaws) {
  FormulaFactory FF;
  Analyzer An(FF);
  Formula T = FF.trueF();
  // (child::*)+ ≡ descendant::*.
  EXPECT_TRUE(An.equivalence(xp("(*)+"), T, xp("descendant::*"), T).Holds);
  // (child::a)+ ⊆ descendant::a, strictly.
  EXPECT_TRUE(An.containment(xp("(a)+"), T, xp("descendant::a"), T).Holds);
  AnalysisResult Strict =
      An.containment(xp("descendant::a"), T, xp("(a)+"), T);
  EXPECT_FALSE(Strict.Holds);
  ASSERT_TRUE(Strict.Tree.has_value());
  // Counterexample is concrete: an a reachable only through a non-a node.
  NodeSet SDesc = evalXPath(*Strict.Tree, xp("descendant::a"));
  NodeSet SPlus = evalXPath(*Strict.Tree, xp("(a)+"));
  bool Diff = false;
  for (NodeId N : SDesc)
    if (!SPlus.count(N))
      Diff = true;
  EXPECT_TRUE(Diff);
  // (foll-sibling::*)+ ≡ foll-sibling::*.
  EXPECT_TRUE(An.equivalence(xp("(foll-sibling::*)+"), T,
                             xp("foll-sibling::*"), T)
                  .Holds);
  // Marx's canonical example: (child::a[b])+ refines (child::a)+.
  EXPECT_TRUE(An.containment(xp("(a[b])+"), T, xp("(a)+"), T).Holds);
  EXPECT_FALSE(An.containment(xp("(a)+"), T, xp("(a[b])+"), T).Holds);
}

} // namespace
