//===- tree_test.cpp - Focused trees, documents, XML ----------------------===//
//
// Tests §3's zipper navigation laws, the Document arena, conversions, and
// XML round-trips.
//
//===----------------------------------------------------------------------===//

#include "tree/Document.h"
#include "tree/FocusedTree.h"
#include "tree/Xml.h"

#include <gtest/gtest.h>

#include <random>

using namespace xsa;

namespace {

/// Builds the running example of the paper: a[b[ε]] with focus at root.
FocusedTree paperExample() {
  TreeRef B = makeTree(internSymbol("b"), false, nullptr);
  TreeRef A = makeTree(internSymbol("a"), false, cons(B, nullptr));
  return FocusedTree::atRoot(A);
}

TEST(FocusedTree, BasicNavigation) {
  FocusedTree F1 = paperExample();
  EXPECT_EQ(symbolName(F1.name()), "a");
  // f2 = f1⟨1⟩.
  auto F2 = F1.down1();
  ASSERT_TRUE(F2.has_value());
  EXPECT_EQ(symbolName(F2->name()), "b");
  // f2⟨1̄⟩ = f1 (the worked example of §4).
  auto Back = F2->up1();
  ASSERT_TRUE(Back.has_value());
  EXPECT_EQ(*Back, F1);
}

TEST(FocusedTree, UndefinedMoves) {
  FocusedTree F = paperExample();
  EXPECT_FALSE(F.down2().has_value()); // no sibling
  EXPECT_FALSE(F.up1().has_value());   // at top
  EXPECT_FALSE(F.up2().has_value());   // no previous sibling
  auto Child = F.down1();
  ASSERT_TRUE(Child.has_value());
  EXPECT_FALSE(Child->down1().has_value()); // leaf
  EXPECT_FALSE(Child->down2().has_value());
  EXPECT_FALSE(Child->up2().has_value());
}

TEST(FocusedTree, SiblingNavigation) {
  // r[x y z]
  TreeRef X = makeTree(internSymbol("x"), false, nullptr);
  TreeRef Y = makeTree(internSymbol("y"), false, nullptr);
  TreeRef Z = makeTree(internSymbol("z"), false, nullptr);
  TreeRef R =
      makeTree(internSymbol("r"), false, cons(X, cons(Y, cons(Z, nullptr))));
  FocusedTree F = FocusedTree::atRoot(R);
  auto FX = F.down1();
  ASSERT_TRUE(FX);
  EXPECT_EQ(symbolName(FX->name()), "x");
  auto FY = FX->down2();
  ASSERT_TRUE(FY);
  EXPECT_EQ(symbolName(FY->name()), "y");
  auto FZ = FY->down2();
  ASSERT_TRUE(FZ);
  EXPECT_EQ(symbolName(FZ->name()), "z");
  EXPECT_FALSE(FZ->down2().has_value());
  // Only the leftmost sibling can move up with ⟨1̄⟩.
  EXPECT_FALSE(FY->up1().has_value());
  EXPECT_FALSE(FZ->up1().has_value());
  // ⟨2̄⟩ inverts ⟨2⟩.
  auto BackY = FZ->up2();
  ASSERT_TRUE(BackY);
  EXPECT_EQ(*BackY, *FY);
  // Rebuild the root from the leftmost child.
  auto BackRoot = FX->up1();
  ASSERT_TRUE(BackRoot);
  EXPECT_EQ(*BackRoot, F);
}

TEST(Document, BuildAndNavigate) {
  Document D;
  NodeId R = D.addNode("r", InvalidNodeId);
  NodeId A = D.addNode("a", R);
  NodeId B = D.addNode("b", R);
  NodeId C = D.addNode("c", A);
  EXPECT_EQ(D.size(), 4u);
  EXPECT_EQ(D.firstChild(R), A);
  EXPECT_EQ(D.nextSibling(A), B);
  EXPECT_EQ(D.prevSibling(B), A);
  EXPECT_EQ(D.parent(C), A);
  // Binary modalities.
  EXPECT_EQ(D.child1(R), A);
  EXPECT_EQ(D.child2(A), B);
  EXPECT_EQ(D.up1(A), R);              // leftmost child
  EXPECT_EQ(D.up1(B), InvalidNodeId);  // not leftmost
  EXPECT_EQ(D.up2(B), A);
  EXPECT_EQ(D.depth(C), 2);
  EXPECT_EQ(D.roots(), std::vector<NodeId>{R});
}

TEST(Document, Hedges) {
  Document D;
  NodeId R1 = D.addNode("r1", InvalidNodeId);
  NodeId R2 = D.addNode("r2", InvalidNodeId);
  EXPECT_EQ(D.nextSibling(R1), R2);
  EXPECT_EQ(D.up2(R2), R1);
  EXPECT_EQ(D.up1(R1), InvalidNodeId);
  EXPECT_EQ(D.roots(), (std::vector<NodeId>{R1, R2}));
}

TEST(Document, FocusAtRoundTrip) {
  Document D;
  NodeId R = D.addNode("r", InvalidNodeId);
  NodeId A = D.addNode("a", R);
  NodeId B = D.addNode("b", R);
  (void)D.addNode("c", B);
  D.setMark(A);
  // The focused tree at B must navigate like the document.
  FocusedTree F = D.focusAt(B);
  EXPECT_EQ(symbolName(F.name()), "b");
  auto Up = F.up2();
  ASSERT_TRUE(Up);
  EXPECT_EQ(symbolName(Up->name()), "a");
  EXPECT_TRUE(Up->marked());
  auto Down = F.down1();
  ASSERT_TRUE(Down);
  EXPECT_EQ(symbolName(Down->name()), "c");
}

TEST(Document, AddTreeImportsMark) {
  TreeRef B = makeTree(internSymbol("b"), true, nullptr);
  TreeRef A = makeTree(internSymbol("a"), false, cons(B, nullptr));
  Document D;
  NodeId R = D.addTree(A);
  EXPECT_EQ(D.labelName(R), "a");
  ASSERT_NE(D.markedNode(), InvalidNodeId);
  EXPECT_EQ(D.labelName(D.markedNode()), "b");
}

TEST(Xml, ParsePrintRoundTrip) {
  const char *Src = R"(<a><b xsa:start="true"><c/></b><d/></a>)";
  Document D;
  std::string Err;
  ASSERT_TRUE(parseXml(Src, D, Err)) << Err;
  EXPECT_EQ(D.size(), 4u);
  ASSERT_NE(D.markedNode(), InvalidNodeId);
  EXPECT_EQ(D.labelName(D.markedNode()), "b");
  std::string Printed = printXml(D);
  Document D2;
  ASSERT_TRUE(parseXml(Printed, D2, Err)) << Err;
  EXPECT_EQ(D, D2);
}

TEST(Xml, SkipsTextCommentsAndAttributes) {
  const char *Src =
      "<?xml version=\"1.0\"?><!DOCTYPE a><a id=\"1\">hello<!-- note "
      "--><b class='x'/>world</a>";
  Document D;
  std::string Err;
  ASSERT_TRUE(parseXml(Src, D, Err)) << Err;
  EXPECT_EQ(D.size(), 2u);
  EXPECT_EQ(D.labelName(0), "a");
  EXPECT_EQ(D.labelName(1), "b");
}

TEST(Xml, Errors) {
  Document D;
  std::string Err;
  EXPECT_FALSE(parseXml("<a><b></a>", D, Err));
  EXPECT_NE(Err.find("mismatched"), std::string::npos);
  Document D2;
  EXPECT_FALSE(parseXml("<a>", D2, Err));
  Document D3;
  EXPECT_FALSE(parseXml("", D3, Err));
  Document D4;
  EXPECT_FALSE(parseXml(
      "<a xsa:start=\"true\"><b xsa:start=\"true\"/></a>", D4, Err));
}

//===----------------------------------------------------------------------===//
// Property sweep: on random documents, every defined zipper move has the
// documented inverse, and Document/FocusedTree navigation agree.
//===----------------------------------------------------------------------===//

Document randomDocument(std::mt19937 &Rng, int MaxNodes) {
  Document D;
  const char *Labels[] = {"a", "b", "c", "d"};
  int N = 1 + static_cast<int>(Rng() % MaxNodes);
  for (int I = 0; I < N; ++I) {
    NodeId Parent =
        D.empty() ? InvalidNodeId
                  : static_cast<NodeId>(Rng() % (D.size() + 1)) - 1;
    if (Parent >= static_cast<NodeId>(D.size()))
      Parent = InvalidNodeId;
    D.addNode(Labels[Rng() % 4], Parent);
  }
  D.setMark(static_cast<NodeId>(Rng() % D.size()));
  return D;
}

class TreePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(TreePropertyTest, ZipperLawsAndAgreementWithDocument) {
  std::mt19937 Rng(GetParam());
  Document D = randomDocument(Rng, 24);
  for (NodeId N = 0; N < static_cast<NodeId>(D.size()); ++N) {
    FocusedTree F = D.focusAt(N);
    EXPECT_EQ(F.name(), D.label(N));
    EXPECT_EQ(F.marked(), D.isMarked(N));
    for (int A = 0; A < 4; ++A) {
      auto Moved = F.follow(A);
      NodeId DocMoved = D.follow(N, A);
      ASSERT_EQ(Moved.has_value(), DocMoved != InvalidNodeId)
          << "node " << N << " modality " << A;
      if (!Moved)
        continue;
      EXPECT_EQ(Moved->name(), D.label(DocMoved));
      // Inverse law: f⟨a⟩⟨ā⟩ = f.
      int Inverse = (A + 2) & 3;
      auto Back = Moved->follow(Inverse);
      ASSERT_TRUE(Back.has_value());
      EXPECT_EQ(*Back, F) << "node " << N << " modality " << A;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TreePropertyTest, ::testing::Range(1, 21));

} // namespace
