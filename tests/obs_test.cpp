//===- obs_test.cpp - Observability layer (metrics + tracer) --------------===//
//
// Tests src/obs/: the MetricRegistry (counter sharding under concurrent
// increments — the TSan stress —, gauge semantics, histogram quantile
// math and snapshot deltas, Prometheus text and JSON export shape,
// volatile-metric exclusion) and the span tracer (disabled fast path
// records nothing, parent linkage and nesting, correctness across
// WorkerPool threads, stage accumulation, Chrome trace-event export
// parsed back through the project's own JSON parser). The batch
// protocol surface — {"op":"metrics"} schema field, unknown-config-key
// rejection — rides on the same fixtures.
//
// The tracer is a process-global singleton; every test that enables it
// stops it before returning so tests stay order-independent.
//
//===----------------------------------------------------------------------===//

#include "obs/Log.h"
#include "obs/Metrics.h"
#include "obs/SlowQuery.h"
#include "obs/Trace.h"

#include "service/Batch.h"
#include "service/Json.h"
#include "service/Session.h"
#include "support/WorkerPool.h"

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace xsa;

namespace {

//===----------------------------------------------------------------------===//
// Counter / Gauge
//===----------------------------------------------------------------------===//

TEST(Counter, ExactUnderConcurrentIncrements) {
  // 8 threads × 10k adds on one sharded counter: the total must be
  // exact once writers join (and TSan must see no race on the slots).
  Counter C;
  constexpr size_t NumThreads = 8, PerThread = 10000;
  std::vector<std::thread> Ts;
  for (size_t T = 0; T < NumThreads; ++T)
    Ts.emplace_back([&C] {
      for (size_t I = 0; I < PerThread; ++I)
        C.add();
    });
  for (std::thread &T : Ts)
    T.join();
  EXPECT_EQ(C.value(), NumThreads * PerThread);
}

TEST(Gauge, LastWriteWins) {
  Gauge G;
  EXPECT_EQ(G.value(), 0.0);
  G.set(3.5);
  G.set(-1.25);
  EXPECT_EQ(G.value(), -1.25);
}

//===----------------------------------------------------------------------===//
// Histogram
//===----------------------------------------------------------------------===//

TEST(Histogram, QuantilesInterpolateWithinOwningBucket) {
  Histogram H({1, 2, 4, 8});
  // 4 observations spread one per bucket below 8.
  H.observe(0.5);
  H.observe(1.5);
  H.observe(3);
  H.observe(6);
  HistogramSnapshot S = H.snapshot();
  EXPECT_EQ(S.Count, 4u);
  EXPECT_DOUBLE_EQ(S.Sum, 11.0);
  // p50: rank 2 of 4 lands at the end of the (1,2] bucket.
  EXPECT_DOUBLE_EQ(S.quantile(0.5), 2.0);
  // p25 exhausts exactly the first bucket.
  EXPECT_DOUBLE_EQ(S.quantile(0.25), 1.0);
  // p100 lands at the top of the (4,8] bucket.
  EXPECT_DOUBLE_EQ(S.quantile(1.0), 8.0);
}

TEST(Histogram, OverflowBucketReportsLastFiniteBound) {
  Histogram H({1, 2});
  H.observe(100); // +Inf bucket
  EXPECT_DOUBLE_EQ(H.snapshot().quantile(0.99), 2.0);
}

TEST(Histogram, SnapshotDeltaIsolatesABracketedRegion) {
  Histogram H({1, 10, 100});
  H.observe(0.5);
  H.observe(50);
  HistogramSnapshot Before = H.snapshot();
  H.observe(5);
  H.observe(5);
  HistogramSnapshot Delta = H.snapshot().since(Before);
  EXPECT_EQ(Delta.Count, 2u);
  EXPECT_DOUBLE_EQ(Delta.Sum, 10.0);
  // Both delta observations live in the (1,10] bucket; rank 1.98 of 2
  // interpolates to 1 + 9·0.99.
  EXPECT_NEAR(Delta.quantile(0.99), 9.91, 1e-9);
  EXPECT_GT(Delta.quantile(0.5), 1.0);
}

TEST(Histogram, ConcurrentObservationsAreAllCounted) {
  Histogram H({1, 2, 4});
  constexpr size_t NumThreads = 4, PerThread = 5000;
  std::vector<std::thread> Ts;
  for (size_t T = 0; T < NumThreads; ++T)
    Ts.emplace_back([&H, T] {
      for (size_t I = 0; I < PerThread; ++I)
        H.observe(static_cast<double>(T % 3));
    });
  for (std::thread &T : Ts)
    T.join();
  EXPECT_EQ(H.snapshot().Count, NumThreads * PerThread);
}

//===----------------------------------------------------------------------===//
// MetricRegistry
//===----------------------------------------------------------------------===//

TEST(MetricRegistry, GetOrCreateReturnsStableHandles) {
  MetricRegistry R;
  Counter &A = R.counter("t_total", "help");
  Counter &B = R.counter("t_total");
  EXPECT_EQ(&A, &B);
  A.add(3);
  EXPECT_EQ(B.value(), 3u);
}

TEST(MetricRegistry, ConcurrentRegistrationAndUseIsSafe) {
  // The TSan stress for the registry itself: threads race get-or-create
  // of overlapping names while hammering the returned handles.
  MetricRegistry R;
  constexpr size_t NumThreads = 8, PerThread = 2000;
  std::vector<std::thread> Ts;
  for (size_t T = 0; T < NumThreads; ++T)
    Ts.emplace_back([&R, T] {
      for (size_t I = 0; I < PerThread; ++I) {
        R.counter("shared_total").add();
        R.counter("mine_" + std::to_string(T % 3) + "_total").add();
        R.gauge("g_shared").set(static_cast<double>(I));
        R.histogram("h_shared").observe(static_cast<double>(I % 7));
      }
    });
  for (std::thread &T : Ts)
    T.join();
  EXPECT_EQ(R.counter("shared_total").value(), NumThreads * PerThread);
  EXPECT_EQ(R.histogram("h_shared").snapshot().Count, NumThreads * PerThread);
}

TEST(MetricRegistry, PrometheusTextShape) {
  MetricRegistry R;
  R.counter(labeledMetricName("req_total", "op", "a"), "Requests").add(2);
  R.counter(labeledMetricName("req_total", "op", "b")).add(5);
  R.gauge("nodes", "Live nodes").set(7);
  Histogram &H = R.histogram("lat_ms", "Latency", {1, 10});
  H.observe(0.5);
  H.observe(5);
  H.observe(50);
  std::string Text = R.prometheusText();

  // One HELP/TYPE block per base name, label sets as series under it.
  EXPECT_EQ(Text.find("# TYPE req_total counter"),
            Text.rfind("# TYPE req_total counter"));
  EXPECT_NE(Text.find("req_total{op=\"a\"} 2"), std::string::npos);
  EXPECT_NE(Text.find("req_total{op=\"b\"} 5"), std::string::npos);
  EXPECT_NE(Text.find("# TYPE nodes gauge"), std::string::npos);
  EXPECT_NE(Text.find("nodes 7"), std::string::npos);
  // Cumulative buckets with the +Inf terminal, then sum and count.
  EXPECT_NE(Text.find("# TYPE lat_ms histogram"), std::string::npos);
  EXPECT_NE(Text.find("lat_ms_bucket{le=\"1\"} 1"), std::string::npos);
  EXPECT_NE(Text.find("lat_ms_bucket{le=\"10\"} 2"), std::string::npos);
  EXPECT_NE(Text.find("lat_ms_bucket{le=\"+Inf\"} 3"), std::string::npos);
  EXPECT_NE(Text.find("lat_ms_sum 55.5"), std::string::npos);
  EXPECT_NE(Text.find("lat_ms_count 3"), std::string::npos);
}

TEST(MetricRegistry, OpenMetricsTextShape) {
  MetricRegistry R;
  R.counter("req_total", "Requests").add(3);
  R.counter(labeledMetricName("req_total", "op", "a")).add(2);
  R.gauge("nodes", "Live nodes").set(7);
  Histogram &H =
      R.histogram("xsa_request_latency_ms", "Request latency", {1, 10, 100});
  H.observe(0.5);
  H.observe(5);
  H.observe(50);
  H.setExemplar("r-123", 5);
  std::string Text = R.openMetricsText();

  // Counter families drop the _total suffix; sample lines keep it.
  EXPECT_NE(Text.find("# TYPE req counter"), std::string::npos);
  EXPECT_EQ(Text.find("# TYPE req_total"), std::string::npos);
  EXPECT_NE(Text.find("req_total 3"), std::string::npos);
  EXPECT_NE(Text.find("req_total{op=\"a\"} 2"), std::string::npos);
  // TYPE precedes HELP (classic exposition is HELP-then-TYPE).
  EXPECT_LT(Text.find("# TYPE req counter"), Text.find("# HELP req Requests"));
  // The exemplar renders on exactly the bucket whose range contains its
  // value — 5 falls in (1, 10] — in OpenMetrics exemplar syntax.
  EXPECT_NE(Text.find("xsa_request_latency_ms_bucket{le=\"10\"} 2 "
                      "# {rid=\"r-123\"} 5"),
            std::string::npos);
  size_t FirstEx = Text.find("# {");
  EXPECT_NE(FirstEx, std::string::npos);
  EXPECT_EQ(Text.find("# {", FirstEx + 1), std::string::npos);
  // The mandatory terminator, and nothing after it.
  EXPECT_TRUE(Text.size() >= 6 &&
              Text.compare(Text.size() - 6, 6, "# EOF\n") == 0);

  // The classic exposition of the same registry is unchanged by the
  // OpenMetrics extensions: full-name counter family, no exemplars, no
  // terminator.
  std::string Classic = R.prometheusText();
  EXPECT_NE(Classic.find("# TYPE req_total counter"), std::string::npos);
  EXPECT_EQ(Classic.find("# {"), std::string::npos);
  EXPECT_EQ(Classic.find("# EOF"), std::string::npos);
}

TEST(MetricRegistry, OpenMetricsExemplarPastLastFiniteBoundRidesInf) {
  MetricRegistry R;
  Histogram &H = R.histogram("h_ms", "", {1, 10});
  H.observe(500);
  H.setExemplar("r-inf", 500);
  std::string Text = R.openMetricsText();
  EXPECT_NE(Text.find("h_ms_bucket{le=\"+Inf\"} 1 # {rid=\"r-inf\"} 500"),
            std::string::npos);
}

TEST(MetricRegistry, LabeledNameEscapesValue) {
  EXPECT_EQ(labeledMetricName("m", "op", "a\"b\\c"),
            "m{op=\"a\\\"b\\\\c\"}");
}

TEST(MetricRegistry, JsonExportShapeAndSchema) {
  MetricRegistry R;
  R.counter("c_total").add(4);
  R.gauge("g").set(1.5);
  R.histogram("h_ms", "", {1, 2}).observe(1.5);
  JsonRef J = R.toJson();
  EXPECT_EQ(J->str("schema"), MetricRegistry::SchemaVersion);
  EXPECT_EQ(J->get("counters")->get("c_total")->asNumber(), 4);
  EXPECT_EQ(J->get("gauges")->get("g")->asNumber(), 1.5);
  JsonRef H = J->get("histograms")->get("h_ms");
  EXPECT_EQ(H->get("count")->asNumber(), 1);
  EXPECT_TRUE(H->has("p50"));
  EXPECT_TRUE(H->has("p99"));
  // Buckets are cumulative and end with +Inf.
  JsonRef Buckets = H->get("buckets");
  EXPECT_EQ(Buckets->items().size(), 3u);
  EXPECT_EQ(Buckets->items().back()->str("le"), "+Inf");
}

TEST(MetricRegistry, StableExportDropsVolatileMetrics) {
  MetricRegistry R;
  R.counter("det_total").add(1);
  R.counter("sched_total", "", /*Volatile=*/true).add(1);
  R.gauge("sched_g", "", /*Volatile=*/true).set(9);
  R.histogram("lat_ms").observe(1);
  JsonRef Stable = R.toJson(/*IncludeVolatile=*/false);
  EXPECT_TRUE(Stable->get("counters")->has("det_total"));
  EXPECT_FALSE(Stable->get("counters")->has("sched_total"));
  EXPECT_FALSE(Stable->get("gauges")->has("sched_g"));
  // Histograms (latency distributions) are volatile wholesale.
  EXPECT_FALSE(Stable->has("histograms"));
  // The full export still carries everything.
  JsonRef Full = R.toJson();
  EXPECT_TRUE(Full->get("counters")->has("sched_total"));
  EXPECT_TRUE(Full->get("histograms")->has("lat_ms"));
}

//===----------------------------------------------------------------------===//
// Tracer / Span
//===----------------------------------------------------------------------===//

/// Collects the tracer's buffered events into a span-id-keyed map.
std::map<uint64_t, Tracer::Event> eventsById() {
  std::map<uint64_t, Tracer::Event> M;
  Tracer::global().forEachEvent(
      [&](const Tracer::Event &E) { M[E.Id] = E; });
  return M;
}

TEST(Tracer, DisabledSpansRecordNothing) {
  Tracer &T = Tracer::global();
  T.start();
  T.stop();          // clears buffers, then disables
  size_t Before = T.eventCount();
  {
    Span S("never");
    S.arg("k", 1.0);
    EXPECT_FALSE(S.active());
  }
  T.recordSpanFrom("never-either", Tracer::nowNs());
  EXPECT_EQ(T.eventCount(), Before);
}

TEST(Tracer, NestingLinksParents) {
  Tracer &T = Tracer::global();
  T.start();
  uint64_t OuterId = 0, InnerId = 0;
  {
    Span Outer("outer");
    {
      Span Inner("inner");
      Span Sibling("sibling");
      Inner.end(); // explicit end before the sibling closes is tolerated
    }
    Outer.arg("n", 2.0);
  }
  T.stop();
  auto Events = eventsById();
  ASSERT_EQ(Events.size(), 3u);
  for (const auto &[Id, E] : Events) {
    if (std::string(E.Name) == "outer")
      OuterId = Id;
    if (std::string(E.Name) == "inner")
      InnerId = Id;
  }
  ASSERT_NE(OuterId, 0u);
  ASSERT_NE(InnerId, 0u);
  EXPECT_EQ(Events[OuterId].Parent, 0u); // root
  EXPECT_EQ(Events[InnerId].Parent, OuterId);
  EXPECT_EQ(Events[OuterId].NumArgs, 1);
  EXPECT_EQ(std::string(Events[OuterId].Args[0].Key), "n");
  // Start/duration are epoch-relative and nested inside the parent.
  EXPECT_GE(Events[InnerId].StartNs, Events[OuterId].StartNs);
}

TEST(Tracer, SpansNestCorrectlyAcrossWorkerPoolThreads) {
  Tracer &T = Tracer::global();
  WorkerPool Pool(4);
  T.start();
  constexpr size_t N = 64;
  Pool.parallelFor(N, [](size_t Index, size_t) {
    Span Task("task");
    Task.arg("index", static_cast<double>(Index));
    Span Child("task.child");
  });
  T.stop();

  // The pool barrier is the happens-before edge: all worker buffers are
  // readable now. Every child's parent must be a task span on the SAME
  // thread, and ids must be globally unique.
  auto Events = eventsById();
  size_t Tasks = 0, Children = 0;
  for (const auto &[Id, E] : Events) {
    std::string Name = E.Name;
    if (Name == "task") {
      ++Tasks;
      EXPECT_EQ(E.Parent, 0u) << "task spans are roots";
    } else if (Name == "task.child") {
      ++Children;
      auto It = Events.find(E.Parent);
      ASSERT_NE(It, Events.end()) << "child's parent was recorded";
      EXPECT_STREQ(It->second.Name, "task");
      EXPECT_EQ(It->second.Tid, E.Tid) << "parent lives on the same thread";
    }
  }
  EXPECT_EQ(Tasks, N);
  EXPECT_EQ(Children, N);
  // Queue-wait intervals were recorded by the workers that woke.
  size_t QueueWaits = 0;
  T.forEachEvent([&](const Tracer::Event &E) {
    QueueWaits += std::string(E.Name) == "pool.queue_wait";
  });
  EXPECT_GT(QueueWaits, 0u);
}

TEST(Tracer, StageScopeAccumulatesByName) {
  Tracer &T = Tracer::global();
  T.start();
  StageTotals Totals;
  {
    StageScope Scope(Totals);
    { Span A("alpha"); }
    { Span A("alpha"); }
    { Span B("beta"); }
  }
  { Span Outside("gamma"); } // after the scope: not accumulated
  T.stop();
  auto Rows = Totals.toMs();
  ASSERT_EQ(Rows.size(), 2u);
  EXPECT_EQ(Rows[0].first, "alpha");
  EXPECT_EQ(Rows[1].first, "beta");
  EXPECT_GE(Rows[0].second, 0.0);
}

TEST(Tracer, ChromeTraceParsesAndCoversAllSpans) {
  Tracer &T = Tracer::global();
  T.start();
  {
    Span Outer("req");
    Span Inner("req.step");
    Inner.arg("detail", std::string("x\"y"));
  }
  T.stop();
  std::string Doc = T.chromeTraceJson();
  std::string Err;
  JsonRef J = parseJson(Doc, Err);
  ASSERT_NE(J, nullptr) << Err;
  JsonRef Events = J->get("traceEvents");
  size_t Complete = 0, Meta = 0;
  for (const JsonRef &E : Events->items()) {
    std::string Ph = E->str("ph");
    if (Ph == "X") {
      ++Complete;
      EXPECT_TRUE(E->has("ts"));
      EXPECT_TRUE(E->has("dur"));
      EXPECT_TRUE(E->has("tid"));
      EXPECT_TRUE(E->get("args")->has("span"));
      EXPECT_TRUE(E->get("args")->has("parent"));
    } else if (Ph == "M") {
      ++Meta;
    }
  }
  EXPECT_EQ(Complete, T.eventCount());
  EXPECT_GE(Complete, 2u);
  EXPECT_GE(Meta, 1u); // thread_name metadata per registered thread
}

TEST(Tracer, RestartClearsEarlierEvents) {
  Tracer &T = Tracer::global();
  T.start();
  { Span S("first"); }
  T.stop();
  EXPECT_GT(T.eventCount(), 0u);
  T.start();
  T.stop();
  EXPECT_EQ(T.eventCount(), 0u);
}

//===----------------------------------------------------------------------===//
// Batch protocol surface
//===----------------------------------------------------------------------===//

std::string runLines(AnalysisSession &Session, const std::string &Input,
                     bool Stable = false) {
  std::istringstream In(Input);
  std::ostringstream Out;
  runBatchJsonLines(Session, In, Out, nullptr, Stable);
  return Out.str();
}

TEST(BatchProtocol, MetricsOpCarriesSchemaVersion) {
  AnalysisSession Session;
  std::string Out = runLines(
      Session,
      "{\"id\":\"q\",\"op\":\"empty\",\"e1\":\"a/b[parent::c]\"}\n"
      "{\"id\":\"m\",\"op\":\"metrics\"}\n");
  std::istringstream Parse(Out);
  std::string Line, Err;
  ASSERT_TRUE(std::getline(Parse, Line)); // the decision response
  ASSERT_TRUE(std::getline(Parse, Line)); // the metrics response
  JsonRef M = parseJson(Line, Err);
  ASSERT_NE(M, nullptr) << Err;
  EXPECT_EQ(M->str("id"), "m");
  EXPECT_TRUE(M->get("ok")->asBool());
  EXPECT_EQ(M->str("schema"), MetricRegistry::SchemaVersion);
  EXPECT_TRUE(M->has("counters"));
  // The request just answered is visible in the tallies.
  EXPECT_GE(
      M->get("counters")->get("xsa_requests_total{op=\"empty\"}")->asNumber(),
      1);
}

TEST(BatchProtocol, StableMetricsOpOmitsVolatileSections) {
  AnalysisSession Session;
  std::string Out = runLines(Session,
                             "{\"id\":\"m\",\"op\":\"metrics\"}\n",
                             /*Stable=*/true);
  std::string Err;
  JsonRef M = parseJson(Out, Err);
  ASSERT_NE(M, nullptr) << Err;
  EXPECT_EQ(M->str("schema"), MetricRegistry::SchemaVersion);
  EXPECT_FALSE(M->has("histograms"));
}

TEST(BatchProtocol, UnknownConfigKeyIsRejectedStructurally) {
  AnalysisSession Session;
  std::string Out = runLines(
      Session, "{\"id\":\"c\",\"op\":\"config\",\"share_fixpoint\":true}\n");
  std::string Err;
  JsonRef R = parseJson(Out, Err);
  ASSERT_NE(R, nullptr) << Err;
  EXPECT_EQ(R->str("id"), "c");
  EXPECT_FALSE(R->get("ok")->asBool());
  JsonRef E = R->get("error");
  ASSERT_EQ(E->type(), JsonValue::Type::Object);
  EXPECT_EQ(E->str("code"), "unknown_config_key");
  EXPECT_EQ(E->str("key"), "share_fixpoint");
  EXPECT_EQ(E->get("line")->asNumber(), 1);
  // The near-miss did NOT silently enable sharing.
  EXPECT_FALSE(Session.shareFixpointsEnabled());
}

TEST(BatchProtocol, KnownConfigKeysStillApply) {
  AnalysisSession Session;
  std::string Out = runLines(
      Session,
      "{\"op\":\"config\",\"jobs\":2,\"share_fixpoints\":true}\n");
  std::string Err;
  JsonRef R = parseJson(Out, Err);
  ASSERT_NE(R, nullptr) << Err;
  EXPECT_TRUE(R->get("ok")->asBool());
  EXPECT_TRUE(Session.shareFixpointsEnabled());
  EXPECT_EQ(Session.jobs(), 2u);
}

//===----------------------------------------------------------------------===//
// Prometheus escaping
//===----------------------------------------------------------------------===//

TEST(MetricRegistry, LabelValueEscapingIsExhaustive) {
  // Every byte value through the escaper: exactly `\`, `"` and newline
  // are rewritten, everything else passes through verbatim — so a
  // hostile namespace name (user-controlled via {"op":"config","ns"})
  // can never break the exposition's quoting or line framing.
  for (int B = 1; B < 256; ++B) {
    char C = static_cast<char>(B);
    std::string In(1, C);
    std::string Out = escapePrometheusLabelValue(In);
    if (C == '\\')
      EXPECT_EQ(Out, "\\\\") << "byte " << B;
    else if (C == '"')
      EXPECT_EQ(Out, "\\\"") << "byte " << B;
    else if (C == '\n')
      EXPECT_EQ(Out, "\\n") << "byte " << B;
    else
      EXPECT_EQ(Out, In) << "byte " << B;
  }
  // Compositions: adjacent escapes, and escapes mixed with passthrough.
  EXPECT_EQ(escapePrometheusLabelValue("a\\\"b\nc"), "a\\\\\\\"b\\nc");
  EXPECT_EQ(escapePrometheusLabelValue("\\\\"), "\\\\\\\\");
  EXPECT_EQ(escapePrometheusLabelValue(""), "");
  // End to end: a labeled series with all three specials stays one
  // well-formed line in the text exposition.
  MetricRegistry R;
  R.counter(labeledMetricName("esc_total", "ns", "a\\b\"c\nd")).add(3);
  std::string Text = R.prometheusText();
  EXPECT_NE(Text.find("esc_total{ns=\"a\\\\b\\\"c\\nd\"} 3"),
            std::string::npos)
      << Text;
}

//===----------------------------------------------------------------------===//
// EventLog
//===----------------------------------------------------------------------===//

TEST(EventLog, LevelGateSuppressesBelowMinimum) {
  EventLog &Log = EventLog::global();
  EventLog::Options O;
  O.MinLevel = LogLevel::Warn;
  O.Sink = nullptr; // ring only
  Log.configure(O);
  Log.clearForTest();
  EXPECT_FALSE(Log.enabled(LogLevel::Debug));
  EXPECT_FALSE(Log.enabled(LogLevel::Info));
  EXPECT_TRUE(Log.enabled(LogLevel::Warn));
  { LogEvent(LogLevel::Info, "suppressed").num("n", 1); }
  { LogEvent(LogLevel::Error, "kept").str("why", "it matters"); }
  std::vector<EventLog::Record> Ring = Log.ring();
  ASSERT_EQ(Ring.size(), 1u);
  EXPECT_EQ(Ring[0].Event, "kept");
  EXPECT_EQ(Ring[0].Fields->str("why"), "it matters");
  EXPECT_EQ(Ring[0].Fields->str("event"), "kept");
  EXPECT_EQ(Ring[0].Fields->str("level"), "error");
  Log.configure(EventLog::Options{});
  Log.clearForTest();
}

TEST(EventLog, RateLimitUnderContentionDropsAtSinkNotRing) {
  // N threads flood far past the sink budget: the token bucket must
  // drop toward the sink (counted, not lost silently) while the ring
  // keeps the most recent RingCapacity records regardless. The sink is
  // a tmpfile so the flood does not spam test output.
  std::FILE *Sink = std::tmpfile();
  ASSERT_NE(Sink, nullptr);
  EventLog &Log = EventLog::global();
  EventLog::Options O;
  O.MinLevel = LogLevel::Info;
  O.RingCapacity = 64;
  O.SinkRatePerSec = 50;
  O.SinkBurst = 10;
  O.Sink = Sink;
  Log.configure(O);
  Log.clearForTest();
  constexpr size_t NumThreads = 8, PerThread = 500;
  std::vector<std::thread> Ts;
  for (size_t T = 0; T < NumThreads; ++T)
    Ts.emplace_back([T] {
      for (size_t I = 0; I < PerThread; ++I)
        LogEvent(LogLevel::Info, "flood")
            .num("thread", static_cast<double>(T))
            .num("i", static_cast<double>(I));
    });
  for (std::thread &T : Ts)
    T.join();
  EXPECT_EQ(Log.recordCount(), NumThreads * PerThread);
  EXPECT_GT(Log.sinkDropped(), 0u);
  EXPECT_LT(Log.sinkDropped(), NumThreads * PerThread); // burst got through
  std::vector<EventLog::Record> Ring = Log.ring();
  ASSERT_EQ(Ring.size(), 64u);
  // Ring keeps the newest, oldest first, strictly ordered by seq.
  for (size_t I = 1; I < Ring.size(); ++I)
    EXPECT_LT(Ring[I - 1].Seq, Ring[I].Seq);
  EXPECT_EQ(Ring.back().Seq, NumThreads * PerThread);
  // Restore the default configuration for other tests.
  Log.configure(EventLog::Options{});
  Log.clearForTest();
  std::fclose(Sink);
}

//===----------------------------------------------------------------------===//
// SlowQueryLog
//===----------------------------------------------------------------------===//

TEST(SlowQueryLog, TailSamplingDecision) {
  SlowQueryLog &Slow = SlowQueryLog::global();
  Slow.configure({/*ThresholdMs=*/100, /*Capacity=*/8});
  EXPECT_FALSE(Slow.shouldRecord(50, /*Ok=*/true));
  EXPECT_TRUE(Slow.shouldRecord(100, /*Ok=*/true));
  EXPECT_TRUE(Slow.shouldRecord(0, /*Ok=*/false)); // errors always qualify
  Slow.configure({/*ThresholdMs=*/0, /*Capacity=*/8});
  EXPECT_TRUE(Slow.shouldRecord(0, /*Ok=*/true)); // 0 captures everything
  Slow.configure(SlowQueryLog::Options{});
  Slow.clearForTest();
}

TEST(SlowQueryLog, RingEvictsOldestFirst) {
  SlowQueryLog &Slow = SlowQueryLog::global();
  Slow.configure({/*ThresholdMs=*/0, /*Capacity=*/4});
  Slow.clearForTest();
  for (int I = 0; I < 10; ++I) {
    SlowQueryRecord R;
    R.RequestId = "r" + std::to_string(I);
    R.TotalMs = I;
    Slow.record(std::move(R));
  }
  EXPECT_EQ(Slow.recorded(), 10u);
  std::vector<SlowQueryRecord> Snap = Slow.snapshot();
  ASSERT_EQ(Snap.size(), 4u); // capacity bound held, oldest 6 evicted
  for (size_t I = 0; I < Snap.size(); ++I) {
    EXPECT_EQ(Snap[I].RequestId, "r" + std::to_string(6 + I));
    if (I)
      EXPECT_LT(Snap[I - 1].Seq, Snap[I].Seq);
  }
  // A bounded snapshot returns the NEWEST records, still oldest first.
  std::vector<SlowQueryRecord> Tail = Slow.snapshot(2);
  ASSERT_EQ(Tail.size(), 2u);
  EXPECT_EQ(Tail[0].RequestId, "r8");
  EXPECT_EQ(Tail[1].RequestId, "r9");
  Slow.configure(SlowQueryLog::Options{});
  Slow.clearForTest();
}

TEST(SlowQueryLog, ToJsonCarriesStagesAndIds) {
  SlowQueryRecord R;
  R.Seq = 7;
  R.RequestId = "c3-12";
  R.ClientId = "q1";
  R.Ns = "team-a";
  R.Op = "contains";
  R.Ok = false;
  R.Code = "deadline_exceeded";
  R.QueueWaitMs = 12.5;
  R.TotalMs = 12.5;
  R.StageMs = {{"server.queue_wait", 12.5}};
  JsonRef J = SlowQueryLog::toJson(R);
  EXPECT_EQ(J->str("rid"), "c3-12");
  EXPECT_EQ(J->str("id"), "q1");
  EXPECT_EQ(J->str("ns"), "team-a");
  EXPECT_EQ(J->str("code"), "deadline_exceeded");
  EXPECT_FALSE(J->get("ok")->asBool());
  EXPECT_DOUBLE_EQ(J->get("stages")->get("server.queue_wait")->asNumber(),
                   12.5);
  // No reproduction payload on this record: the optional fields are
  // absent, not empty placeholders.
  EXPECT_FALSE(J->has("request"));
  EXPECT_FALSE(J->has("config"));
}

TEST(SlowQueryLog, ToJsonCarriesReproductionPayload) {
  SlowQueryRecord R;
  R.RequestId = "r-42";
  R.Op = "contains";
  R.RequestJson =
      "{\"id\":\"q1\",\"op\":\"contains\",\"e1\":\"/a//b\",\"e2\":\"//b\","
      "\"dtd\":\"xhtml\"}";
  R.Optimize = true;
  R.Share = true;
  R.Strategy = "auto";
  R.Backend = "parallel";
  JsonRef J = SlowQueryLog::toJson(R);
  // The request embeds as an object (re-parsed, not a quoted string) —
  // what `xsolve replay` re-executes.
  JsonRef Req = J->get("request");
  ASSERT_EQ(Req->type(), JsonValue::Type::Object);
  EXPECT_EQ(Req->str("op"), "contains");
  EXPECT_EQ(Req->str("e1"), "/a//b");
  // The effective config snapshot becomes replay's config preamble.
  JsonRef Cfg = J->get("config");
  ASSERT_EQ(Cfg->type(), JsonValue::Type::Object);
  EXPECT_TRUE(Cfg->get("optimize")->asBool());
  EXPECT_TRUE(Cfg->get("share_fixpoints")->asBool());
  EXPECT_EQ(Cfg->str("fixpoint_strategy"), "auto");
  EXPECT_EQ(Cfg->str("bdd_backend"), "parallel");
}

//===----------------------------------------------------------------------===//
// Stage-capture mode (the always-on accumulation tail sampling rides on)
//===----------------------------------------------------------------------===//

TEST(Tracer, StageCaptureAccumulatesWithoutBufferingEvents) {
  Tracer &T = Tracer::global();
  ASSERT_FALSE(T.enabled());
  T.setStageCapture(true);
  size_t EventsBefore = T.eventCount();
  StageTotals Totals;
  {
    StageScope Scope(Totals);
    {
      Span Outer("request");
      Outer.arg("rid", std::string("r1")); // dropped: capture-only mode
      Span Inner("solver.run");
    }
  }
  T.setStageCapture(false);
  // Durations accumulated by name...
  std::vector<std::pair<std::string, double>> Ms = Totals.toMs();
  bool SawRequest = false, SawSolver = false;
  for (const auto &[Name, V] : Ms) {
    if (Name == "request")
      SawRequest = true;
    if (Name == "solver.run")
      SawSolver = true;
    EXPECT_GE(V, 0);
  }
  EXPECT_TRUE(SawRequest);
  EXPECT_TRUE(SawSolver);
  // ...and NO events buffered (that is the point: no per-event memory).
  EXPECT_EQ(T.eventCount(), EventsBefore);
}

TEST(Tracer, StageCaptureOffAndNoScopeIsInert) {
  Tracer &T = Tracer::global();
  ASSERT_FALSE(T.enabled());
  ASSERT_FALSE(T.stageCaptureEnabled());
  size_t EventsBefore = T.eventCount();
  {
    Span S("nothing");
    S.arg("n", 1);
  }
  EXPECT_EQ(T.eventCount(), EventsBefore);
}

} // namespace
