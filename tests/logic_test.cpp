//===- logic_test.cpp - Lµ formulas, cycle-freeness, lean, semantics ------===//
//
// Tests §4 (the logic, fixpoint collapse, negation), §6.1 (lean, truth
// assignment), the parser/printer, and the direct evaluator.
//
//===----------------------------------------------------------------------===//

#include "logic/CycleFree.h"
#include "logic/Eval.h"
#include "logic/Formula.h"
#include "logic/Lean.h"
#include "logic/Parser.h"
#include "tree/Xml.h"

#include <gtest/gtest.h>

#include <random>

using namespace xsa;

namespace {

Formula parse(FormulaFactory &FF, const std::string &S) {
  std::string Err;
  Formula F = parseFormula(FF, S, Err);
  EXPECT_NE(F, nullptr) << Err << " in: " << S;
  return F;
}

Document doc(const std::string &Xml) {
  Document D;
  std::string Err;
  EXPECT_TRUE(parseXml(Xml, D, Err)) << Err;
  return D;
}

TEST(Formula, HashConsing) {
  FormulaFactory FF;
  Formula A = FF.conj(FF.prop("a"), FF.diamond(Program::Child, FF.prop("b")));
  Formula B = FF.conj(FF.prop("a"), FF.diamond(Program::Child, FF.prop("b")));
  EXPECT_EQ(A, B);
  EXPECT_NE(A, FF.conj(FF.prop("a"), FF.prop("b")));
}

TEST(Formula, Simplifications) {
  FormulaFactory FF;
  Formula A = FF.prop("a");
  EXPECT_EQ(FF.conj(A, FF.trueF()), A);
  EXPECT_EQ(FF.conj(FF.trueF(), A), A);
  EXPECT_EQ(FF.conj(A, FF.falseF()), FF.falseF());
  EXPECT_EQ(FF.disj(A, FF.falseF()), A);
  EXPECT_EQ(FF.disj(A, FF.trueF()), FF.trueF());
  EXPECT_EQ(FF.conj(A, A), A);
  EXPECT_EQ(FF.disj(A, A), A);
  EXPECT_EQ(FF.diamond(Program::Child, FF.falseF()), FF.falseF());
}

TEST(Formula, NegationDualities) {
  FormulaFactory FF;
  Formula A = FF.prop("a");
  EXPECT_EQ(FF.negate(A), FF.negProp("a"));
  EXPECT_EQ(FF.negate(FF.negate(A)), A);
  EXPECT_EQ(FF.negate(FF.trueF()), FF.falseF());
  EXPECT_EQ(FF.negate(FF.start()), FF.negStart());
  // ¬⟨a⟩φ = ¬⟨a⟩⊤ ∨ ⟨a⟩¬φ.
  Formula D = FF.diamond(Program::Sibling, A);
  EXPECT_EQ(FF.negate(D),
            FF.disj(FF.negDiamondTop(Program::Sibling),
                    FF.diamond(Program::Sibling, FF.negProp("a"))));
  // Double negation of a fixpoint formula is semantically the identity
  // (syntactically it may differ: ¬⟨a⟩φ introduces a ¬⟨a⟩⊤ disjunct whose
  // negation is ⟨a⟩⊤ ∧ ⟨a⟩φ).
  FormulaFactory FF2;
  Formula Mu = parse(FF2, "let $X = a | <1>$X in $X");
  Formula NotNotMu = FF2.negate(FF2.negate(Mu));
  Document Tree;
  std::string Err;
  ASSERT_TRUE(parseXml("<r><a><b/><a/></a><c/></r>", Tree, Err));
  EXPECT_EQ(evalFormula(Tree, FF2, Mu), evalFormula(Tree, FF2, NotNotMu));
}

TEST(Formula, ParserPrinterRoundTrip) {
  FormulaFactory FF;
  const char *Cases[] = {
      "T",
      "F",
      "a",
      "~a",
      "#s",
      "a & b",
      "a | b & c",
      "<1>a",
      "<2>(a | b)",
      "<-1>T",
      "<-2>a & <1>b",
      "let $X = a | <1>$X in $X",
      "let $X = <1>$Y; $Y = <2>$X | b in $X & c",
      "mu $Z . a | <2>$Z",
  };
  for (const char *Src : Cases) {
    Formula F = parse(FF, Src);
    std::string Printed = FF.toString(F);
    Formula F2 = parse(FF, Printed);
    EXPECT_EQ(F, F2) << Src << " printed as " << Printed;
  }
}

TEST(Formula, ParserErrors) {
  FormulaFactory FF;
  std::string Err;
  EXPECT_EQ(parseFormula(FF, "a &", Err), nullptr);
  EXPECT_EQ(parseFormula(FF, "<3>a", Err), nullptr);
  EXPECT_EQ(parseFormula(FF, "let $X = a in", Err), nullptr);
  EXPECT_EQ(parseFormula(FF, "(a | b", Err), nullptr);
  EXPECT_EQ(parseFormula(FF, "~$X", Err), nullptr); // open negation
}

TEST(Formula, SizeIsStructural) {
  FormulaFactory FF;
  Formula F = parse(FF, "a & <1>(b | c)");
  EXPECT_EQ(F->size(), 6u); // and, a, <1>, or, b, c
}

//===----------------------------------------------------------------------===//
// Cycle-freeness (Fig. 3): the paper's examples.
//===----------------------------------------------------------------------===//

TEST(CycleFree, PaperExamples) {
  FormulaFactory FF;
  struct Case {
    const char *Src;
    bool CycleFree;
  } Cases[] = {
      // ϕ = µX.⟨1⟩X ∨ ⟨1̄⟩X is not cycle free (§4).
      {"mu $X . <1>$X | <-1>$X", false},
      // "µX = ⟨1⟩(⊤ ∨ ⟨1̄⟩X) in X" is not cycle free. (The smart
      // constructors simplify ⊤ ∨ φ to ⊤, so a ∨ φ keeps the shape.)
      {"let $X = <1>(a | <-1>$X) in $X", false},
      // "µX = ⟨1⟩(X ∨ Y), Y = ⟨1̄⟩(Y ∨ ⊤) in X" is cycle free: the
      // ⟨1⟩⟨1̄⟩ cycle happens once, not once per unfolding.
      {"let $X = <1>($X | $Y); $Y = <-1>($Y | T) in $X", true},
      // µX.⟨1⟩⟨1̄⟩X is a cycle even though X need not be expanded (§4).
      {"let $X = <1><-1>$X in T", false},
      // Unguarded recursion is rejected.
      {"mu $X . a | $X", false},
      // Plain downward recursion is fine.
      {"mu $X . a | <1>$X | <2>$X", true},
      // Upward recursion is fine too.
      {"mu $X . #s | <-1>$X | <-2>$X", true},
      // A clean mixed-direction loop (up then right) has no ⟨a⟩⟨ā⟩ pair.
      {"mu $X . a | <-1><2>$X", true},
      // ... but a loop whose wrap-around forms a pair does:
      // ⟨1̄⟩⟨2⟩⟨1⟩ repeated yields ⟨1⟩⟨1̄⟩ at every period boundary.
      {"mu $X . <-1><2><1>$X", false},
      // Alternating loops whose junction forms a pair.
      {"mu $X . <1>$X | <2><-1>$X", false},
      // Mutual recursion crossing a converse pair between definitions.
      {"let $X = <1>$Y; $Y = <-1>$X in $X", false},
      // Mutual recursion with compatible directions.
      {"let $X = <1>$Y; $Y = <2>$X in $X", true},
  };
  for (const Case &C : Cases) {
    Formula F = parse(FF, C.Src);
    EXPECT_EQ(isCycleFree(F), C.CycleFree) << C.Src;
    // The polynomial graph checker agrees with the literal Fig. 3
    // judgement.
    EXPECT_EQ(isCycleFreeFig3(F), C.CycleFree) << C.Src << " (Fig3)";
  }
}

//===----------------------------------------------------------------------===//
// Direct semantics.
//===----------------------------------------------------------------------===//

TEST(Eval, Atoms) {
  FormulaFactory FF;
  Document D = doc("<a><b xsa:start=\"true\"/><c/></a>");
  EXPECT_EQ(evalFormula(D, FF, FF.trueF()).count(), 3u);
  EXPECT_EQ(evalFormula(D, FF, FF.falseF()).count(), 0u);
  DynBitset A = evalFormula(D, FF, FF.prop("a"));
  EXPECT_TRUE(A.test(0));
  EXPECT_EQ(A.count(), 1u);
  DynBitset S = evalFormula(D, FF, FF.start());
  EXPECT_EQ(S.count(), 1u);
  EXPECT_TRUE(S.test(D.markedNode()));
  EXPECT_EQ(evalFormula(D, FF, FF.negStart()).count(), 2u);
}

TEST(Eval, Modalities) {
  FormulaFactory FF;
  // a[b c[d]]: ids a=0 b=1 c=2 d=3.
  Document D = doc("<a><b/><c><d/></c></a>");
  // ⟨1⟩b: nodes whose first child is b = {a}.
  DynBitset R = evalFormula(D, FF, parse(FF, "<1>b"));
  EXPECT_EQ(R.count(), 1u);
  EXPECT_TRUE(R.test(0));
  // ⟨2⟩c: nodes whose next sibling is c = {b}.
  R = evalFormula(D, FF, parse(FF, "<2>c"));
  EXPECT_EQ(R.count(), 1u);
  EXPECT_TRUE(R.test(1));
  // ⟨1̄⟩a: leftmost children of a = {b}.
  R = evalFormula(D, FF, parse(FF, "<-1>a"));
  EXPECT_EQ(R.count(), 1u);
  EXPECT_TRUE(R.test(1));
  // ⟨2̄⟩b: nodes whose previous sibling is b = {c}.
  R = evalFormula(D, FF, parse(FF, "<-2>b"));
  EXPECT_EQ(R.count(), 1u);
  EXPECT_TRUE(R.test(2));
  // ¬⟨1⟩⊤: leaves = {b, d}.
  R = evalFormula(D, FF, parse(FF, "~<1>T"));
  EXPECT_EQ(R.count(), 2u);
  EXPECT_TRUE(R.test(1));
  EXPECT_TRUE(R.test(3));
}

TEST(Eval, Fixpoints) {
  FormulaFactory FF;
  Document D = doc("<a><b/><c><d/></c></a>");
  // "Descendant-or-self of something named a" via downward recursion:
  // µX. a ∨ ⟨1̄⟩X ∨ ⟨2̄⟩X holds at every node (all are below a).
  DynBitset R = evalFormula(D, FF, parse(FF, "mu $X . a | <-1>$X | <-2>$X"));
  EXPECT_EQ(R.count(), 4u);
  // µX. d ∨ ⟨1⟩X ∨ ⟨2⟩X: nodes with d in their binary subtree: d itself,
  // c (first child d), b (sibling chain reaches c), a (child chain).
  R = evalFormula(D, FF, parse(FF, "mu $X . d | <1>$X | <2>$X"));
  EXPECT_EQ(R.count(), 4u);
  // Empty fixpoint: µX.⟨1⟩X (no base case).
  R = evalFormula(D, FF, parse(FF, "mu $X . <1>$X"));
  EXPECT_EQ(R.count(), 0u);
}

TEST(Eval, MutualFixpoints) {
  FormulaFactory FF;
  Document D = doc("<a><b/><b/><b/></a>");
  // Even-position children: first child is even(0)? Count via mutual
  // recursion on ⟨2̄⟩: $Even holds at leftmost and every second sibling.
  Formula F = parse(FF,
                    "let $Even = ~<-2>T & <-1>T | <-2>$Odd; "
                    "$Odd = <-2>$Even in $Even");
  DynBitset R = evalFormula(D, FF, F);
  EXPECT_FALSE(R.test(0)); // root: not a child
  EXPECT_TRUE(R.test(1));
  EXPECT_FALSE(R.test(2));
  EXPECT_TRUE(R.test(3));
}

TEST(Formula, NuIsAcceptedAsMu) {
  // Lemma 4.2 justifies parsing ν as µ on finite trees.
  FormulaFactory FF;
  EXPECT_EQ(parse(FF, "nu $X . a | <1>$X"), parse(FF, "mu $X . a | <1>$X"));
}

TEST(Eval, FixpointCollapseOnCycleFree) {
  // Lemma 4.2: µ and ν agree on cycle-free formulas over finite trees.
  FormulaFactory FF;
  Document D = doc("<a><b/><c><d/><b/></c></a>");
  const char *Cases[] = {
      "mu $X . b | <1>$X | <2>$X",
      "mu $X . #s | <-1>$X | <-2>$X",
      "let $X = <1>($X | $Y); $Y = <-1>($Y | c) in $X | $Y",
      "a | <1>(mu $X . d | <2>$X)",
  };
  for (const char *Src : Cases) {
    Formula F = parse(FF, Src);
    EXPECT_TRUE(isCycleFree(F)) << Src;
    EXPECT_EQ(evalFormula(D, FF, F, FixpointSemantics::Least),
              evalFormula(D, FF, F, FixpointSemantics::Greatest))
        << Src;
  }
}

TEST(Eval, FixpointsDifferOnCyclicFormulas) {
  // §4: µX.⟨1⟩⟨1̄⟩X is empty but νX.⟨1⟩⟨1̄⟩X holds wherever a first child
  // exists.
  FormulaFactory FF;
  Document D = doc("<a><b/><c><d/></c></a>");
  Formula F = parse(FF, "mu $X . <1><-1>$X");
  EXPECT_FALSE(isCycleFree(F));
  EXPECT_EQ(evalFormula(D, FF, F, FixpointSemantics::Least).count(), 0u);
  DynBitset G = evalFormula(D, FF, F, FixpointSemantics::Greatest);
  EXPECT_EQ(G.count(), 2u); // a and c have first children
  EXPECT_TRUE(G.test(0));
  EXPECT_TRUE(G.test(2));
}

TEST(Eval, NegationIsComplement) {
  FormulaFactory FF;
  Document D = doc("<a><b xsa:start=\"true\"/><c><d/><b/></c></a>");
  const char *Cases[] = {
      "b",
      "#s",
      "<1>b",
      "<-2>b & ~<1>T",
      "mu $X . d | <1>$X | <2>$X",
      "let $X = <1>($X | $Y); $Y = <-1>($Y | c) in $X | $Y",
  };
  DynBitset All = evalFormula(D, FF, FF.trueF());
  for (const char *Src : Cases) {
    Formula F = parse(FF, Src);
    DynBitset Pos = evalFormula(D, FF, F);
    DynBitset Neg = evalFormula(D, FF, FF.negate(F));
    EXPECT_EQ(Pos & Neg, DynBitset(D.size())) << Src;
    EXPECT_EQ(Pos | Neg, All) << Src;
  }
}

//===----------------------------------------------------------------------===//
// Lean (§6.1).
//===----------------------------------------------------------------------===//

TEST(Lean, Structure) {
  FormulaFactory FF;
  Formula Psi = parse(FF, "a & <1>(mu $X . b | <2>$X)");
  Lean L = Lean::compute(FF, Psi);
  // 4 ⟨a⟩⊤ + props {a, b, #other} + s + modal members.
  EXPECT_GE(L.size(), 4u + 3u + 1u + 1u);
  EXPECT_EQ(L.props().size(), 3u);
  EXPECT_TRUE(L.hasProp(internSymbol("a")));
  EXPECT_TRUE(L.hasProp(internSymbol("b")));
  // ⟨a⟩⊤ members are modal members too.
  for (int A = 0; A < 4; ++A)
    EXPECT_TRUE(L.isExist(L.diamTopIndex(static_cast<Program>(A))));
}

TEST(Lean, TypesValidity) {
  FormulaFactory FF;
  Formula Psi = parse(FF, "a & <1>b");
  Lean L = Lean::compute(FF, Psi);
  DynBitset T(L.size());
  // No proposition: invalid.
  EXPECT_FALSE(L.isValidType(T));
  T.set(L.propIndex(internSymbol("a")));
  EXPECT_TRUE(L.isValidType(T));
  // Two propositions: invalid.
  T.set(L.propIndex(internSymbol("b")));
  EXPECT_FALSE(L.isValidType(T));
  T.reset(L.propIndex(internSymbol("b")));
  // Modal member without ⟨a⟩⊤: invalid.
  unsigned I = L.existIndex(FF.diamond(Program::Child, FF.prop("b")));
  ASSERT_NE(I, ~0u);
  T.set(I);
  EXPECT_FALSE(L.isValidType(T));
  T.set(L.diamTopIndex(Program::Child));
  EXPECT_TRUE(L.isValidType(T));
  // Both a first and a second child: invalid.
  T.set(L.diamTopIndex(Program::ParentInv));
  T.set(L.diamTopIndex(Program::SiblingInv));
  EXPECT_FALSE(L.isValidType(T));
}

TEST(Lean, StatusMatchesSemantics) {
  // The truth assignment of Fig. 15 against a type built from a concrete
  // node agrees with the direct evaluator.
  FormulaFactory FF;
  Formula Psi = parse(FF, "a & <1>(mu $X . b | <2>$X) | <-1>(a & #s)");
  Lean L = Lean::compute(FF, Psi);
  Document D = doc("<a xsa:start=\"true\"><c/><b/><a><b/></a></a>");
  for (NodeId N = 0; N < static_cast<NodeId>(D.size()); ++N) {
    // Build the type of node N: evaluate every lean member directly.
    // A label outside Σ(ψ) is represented by σx (§6.1).
    DynBitset T(L.size());
    for (unsigned I = 0; I < L.size(); ++I)
      if (evalFormulaAt(D, FF, L.members()[I], N))
        T.set(I);
    if (!L.hasProp(D.label(N)))
      T.set(L.propIndex(L.otherProp()));
    EXPECT_TRUE(L.isValidType(T)) << "node " << N;
    EXPECT_EQ(L.status(FF, Psi, T), evalFormulaAt(D, FF, Psi, N))
        << "node " << N;
  }
}

//===----------------------------------------------------------------------===//
// Unfolding.
//===----------------------------------------------------------------------===//

TEST(Formula, UnfoldStepsThroughProjections) {
  FormulaFactory FF;
  Formula Mu = parse(FF, "let $X = a | <1>$X in $X");
  ASSERT_TRUE(Mu->is(FormulaKind::Mu));
  Formula U = FF.unfold(Mu);
  // Unfolding the projection steps through the definition: a ∨ ⟨1⟩(µ...).
  ASSERT_TRUE(U->is(FormulaKind::Or));
  EXPECT_EQ(U->lhs(), FF.prop("a"));
  ASSERT_TRUE(U->rhs()->is(FormulaKind::Exist));
  EXPECT_TRUE(U->rhs()->lhs()->is(FormulaKind::Mu));
  // Unfolding is memoized and stable.
  EXPECT_EQ(U, FF.unfold(Mu));
}

TEST(Formula, SubstituteShadows) {
  FormulaFactory FF;
  Formula Inner = parse(FF, "let $X = a | <1>$X in $X");
  // Substituting X inside a binder for X must not touch bound occurrences.
  std::unordered_map<Symbol, Formula> Map{{internSymbol("X"), FF.prop("b")}};
  EXPECT_EQ(FF.substitute(Inner, Map), Inner);
  Formula Open = FF.conj(FF.var("X"), Inner);
  Formula Substituted = FF.substitute(Open, Map);
  EXPECT_EQ(Substituted, FF.conj(FF.prop("b"), Inner));
}

} // namespace
