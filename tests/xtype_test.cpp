//===- xtype_test.cpp - Content models, DTDs, binarization, types ---------===//
//
// Tests §5.2: DTD parsing, Glushkov construction, validation, the binary
// encoding of Fig. 13 (including the paper's variable counts) and the
// type-to-Lµ translation checked against the validator.
//
//===----------------------------------------------------------------------===//

#include "logic/CycleFree.h"
#include "logic/Eval.h"
#include "tree/Xml.h"
#include "xtype/BuiltinDtds.h"
#include "xtype/Compile.h"
#include "xtype/Validate.h"

#include <gtest/gtest.h>

#include <random>

using namespace xsa;

namespace {

Document doc(const std::string &Xml) {
  Document D;
  std::string Err;
  EXPECT_TRUE(parseXml(Xml, D, Err)) << Err;
  return D;
}

TEST(ContentModel, Nullable) {
  auto A = ContentModel::sym("a");
  EXPECT_FALSE(nullable(A));
  EXPECT_TRUE(nullable(ContentModel::eps()));
  EXPECT_TRUE(nullable(ContentModel::star(A)));
  EXPECT_TRUE(nullable(ContentModel::opt(A)));
  EXPECT_FALSE(nullable(ContentModel::plus(A)));
  EXPECT_FALSE(nullable(ContentModel::seq(ContentModel::star(A), A)));
  EXPECT_TRUE(nullable(ContentModel::choice(A, ContentModel::eps())));
}

std::vector<Symbol> word(std::initializer_list<const char *> Names) {
  std::vector<Symbol> W;
  for (const char *N : Names)
    W.push_back(internSymbol(N));
  return W;
}

TEST(ContentModel, GlushkovMatching) {
  // (a, (b | c)*, d?)
  auto R = ContentModel::seq(
      ContentModel::sym("a"),
      ContentModel::seq(ContentModel::star(ContentModel::choice(
                            ContentModel::sym("b"), ContentModel::sym("c"))),
                        ContentModel::opt(ContentModel::sym("d"))));
  Glushkov G = buildGlushkov(R);
  EXPECT_TRUE(glushkovMatches(G, word({"a"})));
  EXPECT_TRUE(glushkovMatches(G, word({"a", "b", "c", "b"})));
  EXPECT_TRUE(glushkovMatches(G, word({"a", "d"})));
  EXPECT_TRUE(glushkovMatches(G, word({"a", "c", "d"})));
  EXPECT_FALSE(glushkovMatches(G, word({})));
  EXPECT_FALSE(glushkovMatches(G, word({"b"})));
  EXPECT_FALSE(glushkovMatches(G, word({"a", "d", "b"})));
  EXPECT_FALSE(glushkovMatches(G, word({"a", "a"})));
}

TEST(Dtd, ParseWikipedia) {
  const Dtd &D = wikipediaDtd();
  EXPECT_EQ(D.numSymbols(), 9u); // Fig. 13: 9 terminals
  EXPECT_EQ(symbolName(D.root()), "article");
  EXPECT_TRUE(D.isDeclared(internSymbol("edit")));
  EXPECT_EQ(toString(D.content(internSymbol("redirect"))), "EMPTY");
}

TEST(Dtd, ParseErrors) {
  Dtd D;
  std::string Err;
  EXPECT_FALSE(parseDtd("<!ELEMENT a (b>", D, Err));
  Dtd D2;
  EXPECT_FALSE(parseDtd("<!ELEMENT a (%undefined;)>", D2, Err));
  EXPECT_NE(Err.find("undefined"), std::string::npos);
  Dtd D3;
  EXPECT_FALSE(parseDtd("<!ELEMENT a ANY>", D3, Err));
}

TEST(Dtd, EntityExpansion) {
  Dtd D;
  std::string Err;
  const char *Src = R"(
    <!ENTITY % inline "b | c">
    <!ELEMENT a (%inline;)*>
    <!ELEMENT b EMPTY>
    <!ELEMENT c EMPTY>
  )";
  ASSERT_TRUE(parseDtd(Src, D, Err)) << Err;
  Glushkov G = buildGlushkov(D.content(internSymbol("a")));
  EXPECT_TRUE(glushkovMatches(G, word({"b", "c", "b"})));
  EXPECT_TRUE(glushkovMatches(G, word({})));
  EXPECT_FALSE(glushkovMatches(G, word({"a"})));
}

TEST(Dtd, BuiltinTable1Sizes) {
  // Table 1 of the paper.
  EXPECT_EQ(smil10Dtd().numSymbols(), 19u);
  EXPECT_EQ(xhtml10StrictDtd().numSymbols(), 77u);
}

TEST(Validate, Wikipedia) {
  const Dtd &D = wikipediaDtd();
  EXPECT_TRUE(validate(
      doc("<article><meta><title/></meta><text/></article>"), D));
  EXPECT_TRUE(validate(
      doc("<article><meta><title/><status/><interwiki/><interwiki/>"
          "<history><edit><text/></edit><edit/></history></meta>"
          "<redirect/></article>"),
      D));
  std::string Why;
  // Missing meta.
  EXPECT_FALSE(validate(doc("<article><text/></article>"), D, &Why));
  // Wrong order.
  EXPECT_FALSE(
      validate(doc("<article><text/><meta><title/></meta></article>"), D));
  // Wrong root.
  EXPECT_FALSE(validate(doc("<meta><title/></meta>"), D, &Why));
  // Undeclared element.
  EXPECT_FALSE(validate(doc("<article><meta><title/></meta><bogus/></article>"),
                        D, &Why));
  EXPECT_NE(Why.find("bogus"), std::string::npos);
  // history requires at least one edit.
  EXPECT_FALSE(validate(
      doc("<article><meta><title/><history/></meta><text/></article>"), D));
}

TEST(Validate, Xhtml) {
  const Dtd &D = xhtml10StrictDtd();
  EXPECT_TRUE(validate(
      doc("<html><head><title/></head><body><p><a><span><a/></span></a></p>"
          "</body></html>"),
      D));
  // Direct a-in-a is prohibited...
  EXPECT_FALSE(validate(
      doc("<html><head><title/></head><body><p><a><a/></a></p></body></html>"),
      D));
  // ...but table needs rows.
  EXPECT_FALSE(validate(
      doc("<html><head><title/></head><body><table/></body></html>"), D));
  EXPECT_TRUE(validate(
      doc("<html><head><title/></head><body><table><tr><td/></tr></table>"
          "</body></html>"),
      D));
}

TEST(Binarize, WikipediaMatchesFig13) {
  BinaryTypeGrammar G = binarize(wikipediaDtd());
  // Figure 13: 9 type variables over 9 terminals.
  EXPECT_EQ(G.terminals().size(), 9u);
  EXPECT_EQ(G.numVars(), 9u) << G.toString();
}

TEST(Binarize, Smil10Table1) {
  BinaryTypeGrammar G = binarize(smil10Dtd());
  // Table 1 reports 11 binary type variables for SMIL 1.0; the exact
  // count depends on the minimization, so accept the same order.
  EXPECT_GE(G.numVars(), 5u);
  EXPECT_LE(G.numVars(), 20u);
}

TEST(Binarize, XhtmlTable1) {
  // Table 1 reports 325 binary type variables. The raw (unminimized)
  // construction is of that order; our minimizing construction merges
  // the many %Inline;-equivalent states far below it.
  BinaryTypeGrammar Raw = binarize(xhtml10StrictDtd(), /*Minimize=*/false);
  EXPECT_GE(Raw.numVars(), 150u);
  EXPECT_LE(Raw.numVars(), 700u);
  BinaryTypeGrammar Min = binarize(xhtml10StrictDtd());
  EXPECT_LT(Min.numVars(), Raw.numVars());
  EXPECT_GE(Min.numVars(), 10u);
}

TEST(Binarize, StartHasNoSibling) {
  BinaryTypeGrammar G = binarize(wikipediaDtd());
  ASSERT_NE(G.Start, BinaryTypeGrammar::EpsilonVar);
  for (const auto &A : G.Vars[G.Start].Alts) {
    EXPECT_EQ(symbolName(A.Label), "article");
    EXPECT_EQ(A.X2, BinaryTypeGrammar::EpsilonVar);
  }
}

//===----------------------------------------------------------------------===//
// Type-to-Lµ translation (§5.2) against the validator.
//===----------------------------------------------------------------------===//

void expectTypeFormulaMatchesValidator(const Dtd &D, const Document &Doc) {
  FormulaFactory FF;
  Formula T = compileDtd(FF, D);
  EXPECT_TRUE(isCycleFree(T));
  bool Valid = validate(Doc, D);
  // The compiled formula holds at the root iff the document validates.
  // (The document must have a single root for the comparison.)
  if (Doc.roots().size() != 1)
    return;
  bool Holds = evalFormulaAt(Doc, FF, T, Doc.roots()[0]);
  EXPECT_EQ(Holds, Valid);
}

TEST(TypeCompile, WikipediaAgainstValidator) {
  const Dtd &D = wikipediaDtd();
  const char *Docs[] = {
      "<article><meta><title/></meta><text/></article>",
      "<article><meta><title/><status/></meta><redirect/></article>",
      "<article><text/></article>",
      "<article><meta><title/></meta><text/><text/></article>",
      "<article><meta><status/><title/></meta><text/></article>",
      "<article><meta><title/><history><edit/></history></meta><text/>"
      "</article>",
      "<text/>",
  };
  for (const char *Src : Docs)
    expectTypeFormulaMatchesValidator(D, doc(Src));
}

TEST(TypeCompile, RandomDocumentsAgainstValidator) {
  // Random small trees over the Wikipedia alphabet: formula ⟺ validator.
  const Dtd &D = wikipediaDtd();
  std::mt19937 Rng(7);
  std::vector<Symbol> Alphabet = D.elements();
  for (int Round = 0; Round < 60; ++Round) {
    Document Doc;
    int N = 1 + static_cast<int>(Rng() % 8);
    for (int I = 0; I < N; ++I) {
      NodeId Parent =
          Doc.empty() ? InvalidNodeId
                      : static_cast<NodeId>(Rng() % (Doc.size() + 1)) - 1;
      Doc.addNode(Alphabet[Rng() % Alphabet.size()], Parent);
    }
    if (Doc.roots().size() != 1)
      continue;
    expectTypeFormulaMatchesValidator(D, Doc);
  }
}

TEST(TypeCompile, UsesOnlyDownwardModalities) {
  FormulaFactory FF;
  Formula T = compileDtd(FF, wikipediaDtd());
  // §5.2: "the translation of a regular tree type uses only downward
  // modalities". Walk the formula and check.
  std::vector<Formula> Stack{T};
  std::unordered_map<Formula, bool> Seen;
  while (!Stack.empty()) {
    Formula F = Stack.back();
    Stack.pop_back();
    if (Seen.count(F))
      continue;
    Seen.emplace(F, true);
    switch (F->kind()) {
    case FormulaKind::Exist:
    case FormulaKind::NegExistTop:
      EXPECT_TRUE(F->program() == Program::Child ||
                  F->program() == Program::Sibling);
      if (F->is(FormulaKind::Exist))
        Stack.push_back(F->lhs());
      break;
    case FormulaKind::And:
    case FormulaKind::Or:
      Stack.push_back(F->lhs());
      Stack.push_back(F->rhs());
      break;
    case FormulaKind::Mu:
      for (const MuBinding &B : F->bindings())
        Stack.push_back(B.Def);
      Stack.push_back(F->body());
      break;
    default:
      break;
    }
  }
}

} // namespace
