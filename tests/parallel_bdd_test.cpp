//===- parallel_bdd_test.cpp - Parallel BDD backend ------------------------===//
//
// Tests src/bdd/Parallel.*: the work-stealing backend against the serial
// one. The contract under test is the determinism argument of Bdd.h —
// canonical hash-consing makes both backends produce *structurally*
// identical reduced ordered BDDs for every operation, no matter how the
// parallel backend's subproblems interleave — plus the lock-free unique
// table's canonicity under concurrent insertion (the CAS-insert path),
// exercised with 8 workers so the TSan CI job sees real contention even
// on small hosts.
//
// Operand sizes deliberately straddle
// ParallelBddManager::SequentialCutoffNodes: below it the parallel
// backend answers on the calling thread (the sequential path must be
// just as correct), above it the task machinery engages.
//
//===----------------------------------------------------------------------===//

#include "bdd/Bdd.h"
#include "bdd/Parallel.h"
#include "bdd/Snapshot.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <utility>
#include <vector>

using namespace xsa;

namespace {

/// Deterministic splitmix-style generator so both managers build the
/// same function from the same seed (no std::random device dependence).
uint64_t nextRand(uint64_t &State) {
  State += 0x9e3779b97f4a7c15ull;
  uint64_t Z = State;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
  return Z ^ (Z >> 31);
}

/// A pseudo-random DNF: OR of \p Terms conjunctions of \p Lits random
/// literals over \p Vars variables. Term/literal choices are a pure
/// function of \p Seed, so the same call on two managers builds the
/// same boolean function; sizes scale with Terms x Lits, which is how
/// the tests land on either side of the sequential cutoff.
Bdd randomDnf(BddManager &M, unsigned Vars, unsigned Terms, unsigned Lits,
              uint64_t Seed) {
  M.ensureVars(Vars);
  uint64_t State = Seed;
  Bdd F = M.zero();
  for (unsigned T = 0; T < Terms; ++T) {
    Bdd C = M.one();
    for (unsigned L = 0; L < Lits; ++L) {
      unsigned V = static_cast<unsigned>(nextRand(State) % Vars);
      bool Neg = nextRand(State) & 1;
      C &= Neg ? M.nvar(V) : M.var(V);
    }
    F |= C;
  }
  return F;
}

/// Structural equality across two managers: same reduced ordered BDD,
/// ignoring node ids. Terminals have fixed ids (ZeroNode/OneNode) in
/// every backend; internal pairs memoize on (idA, idB) — canonicity
/// within each manager makes that sound.
bool structEq(BddManager &MA, uint32_t A, BddManager &MB, uint32_t B,
              std::set<std::pair<uint32_t, uint32_t>> &Seen) {
  if (A < 2 || B < 2)
    return A == B;
  if (!Seen.insert({A, B}).second)
    return true;
  BddManager::RawNode RA = MA.rawNode(A);
  BddManager::RawNode RB = MB.rawNode(B);
  return RA.Var == RB.Var && structEq(MA, RA.Low, MB, RB.Low, Seen) &&
         structEq(MA, RA.High, MB, RB.High, Seen);
}

bool structEq(const Bdd &A, const Bdd &B) {
  std::set<std::pair<uint32_t, uint32_t>> Seen;
  return structEq(*A.manager(), A.node(), *B.manager(), B.node(), Seen);
}

/// DNF shapes on either side of the cutoff. The *Large shape must put
/// the top-level operands past SequentialCutoffNodes combined (asserted
/// in the tests that rely on it, so a future cutoff change cannot
/// silently turn them into sequential-path-only tests).
constexpr unsigned SmallVars = 16, SmallTerms = 6, SmallLits = 5;
constexpr unsigned LargeVars = 48, LargeTerms = 90, LargeLits = 14;

} // namespace

TEST(ParallelBdd, ThreadCountResolves) {
  ParallelBddManager Explicit(0, 8);
  EXPECT_EQ(Explicit.threads(), 8u);
  ParallelBddManager Auto(0, 0);
  EXPECT_GE(Auto.threads(), 1u);
}

TEST(ParallelBdd, SequentialPathMatchesSerial) {
  SerialBddManager S;
  ParallelBddManager P(0, 8);
  Bdd FS = randomDnf(S, SmallVars, SmallTerms, SmallLits, 11);
  Bdd GS = randomDnf(S, SmallVars, SmallTerms, SmallLits, 22);
  Bdd FP = randomDnf(P, SmallVars, SmallTerms, SmallLits, 11);
  Bdd GP = randomDnf(P, SmallVars, SmallTerms, SmallLits, 22);
  // Well under the cutoff: these run on the calling thread.
  ASSERT_LT(FP.nodeCount() + GP.nodeCount(),
            ParallelBddManager::SequentialCutoffNodes);
  EXPECT_TRUE(structEq(FS & GS, FP & GP));
  EXPECT_TRUE(structEq(FS | GS, FP | GP));
  EXPECT_TRUE(structEq(FS ^ GS, FP ^ GP));
  EXPECT_TRUE(structEq(!FS, !FP));
  EXPECT_TRUE(structEq(S.ite(FS, GS, !GS), P.ite(FP, GP, !GP)));
}

TEST(ParallelBdd, ForkJoinApplyMatchesSerialPastCutoff) {
  SerialBddManager S;
  ParallelBddManager P(0, 8);
  Bdd FS = randomDnf(S, LargeVars, LargeTerms, LargeLits, 33);
  Bdd GS = randomDnf(S, LargeVars, LargeTerms, LargeLits, 44);
  Bdd FP = randomDnf(P, LargeVars, LargeTerms, LargeLits, 33);
  Bdd GP = randomDnf(P, LargeVars, LargeTerms, LargeLits, 44);
  // Past the cutoff: the work-stealing machinery engages.
  ASSERT_GT(FP.nodeCount() + GP.nodeCount(),
            ParallelBddManager::SequentialCutoffNodes);
  EXPECT_TRUE(structEq(FS & GS, FP & GP));
  EXPECT_TRUE(structEq(FS | GS, FP | GP));
  EXPECT_TRUE(structEq(FS ^ GS, FP ^ GP));
}

TEST(ParallelBdd, AndExistsMatchesSerialAcrossCutoff) {
  SerialBddManager S;
  ParallelBddManager P(0, 8);
  struct Shape {
    unsigned Vars, Terms, Lits;
  };
  for (Shape Sh : {Shape{SmallVars, SmallTerms, SmallLits},
                   Shape{LargeVars, LargeTerms, LargeLits}}) {
    Bdd FS = randomDnf(S, Sh.Vars, Sh.Terms, Sh.Lits, 55);
    Bdd GS = randomDnf(S, Sh.Vars, Sh.Terms, Sh.Lits, 66);
    Bdd FP = randomDnf(P, Sh.Vars, Sh.Terms, Sh.Lits, 55);
    Bdd GP = randomDnf(P, Sh.Vars, Sh.Terms, Sh.Lits, 66);
    std::vector<unsigned> CubeVars;
    for (unsigned V = 0; V < Sh.Vars; V += 3)
      CubeVars.push_back(V);
    Bdd CS = S.cube(CubeVars);
    Bdd CP = P.cube(CubeVars);
    Bdd RS = S.andExists(FS, GS, CS);
    Bdd RP = P.andExists(FP, GP, CP);
    EXPECT_TRUE(structEq(RS, RP));
    // The relational product is exists(F & G, Cube) computed without the
    // intermediate conjunction — check it against the two-step form too.
    EXPECT_TRUE(structEq(S.exists(FS & GS, CS), RP));
  }
}

TEST(ParallelBdd, UniqueTableStaysCanonicalUnderEightWorkers) {
  // The CAS-insert stress: 8 workers race to hash-cons the same
  // subresults while fork/join churns through a large apply. Canonicity
  // means rebuilding the same function afterwards — through a different
  // operation tree (De Morgan) — must land on the *same node id*: if a
  // losing CAS ever published a duplicate node, the two constructions
  // could diverge. Run under TSan in CI, this is also the data-race
  // stress for the table, the segmented store and the op cache.
  ParallelBddManager P(0, 8);
  for (uint64_t Round = 0; Round < 3; ++Round) {
    Bdd F = randomDnf(P, LargeVars, LargeTerms, LargeLits, 100 + Round);
    Bdd G = randomDnf(P, LargeVars, LargeTerms, LargeLits, 200 + Round);
    ASSERT_GT(F.nodeCount() + G.nodeCount(),
              ParallelBddManager::SequentialCutoffNodes);
    Bdd Direct = F & G;
    Bdd DeMorgan = !(!F | !G);
    EXPECT_EQ(Direct.node(), DeMorgan.node());
    // And the same op again is a straight unique-table/op-cache replay.
    EXPECT_EQ((F & G).node(), Direct.node());
  }
  // No collector by design.
  EXPECT_EQ(P.gcRuns(), 0u);
  EXPECT_GT(P.numNodes(), 0u);
  EXPECT_GE(P.peakNodes(), P.numNodes());
}

TEST(ParallelBdd, SnapshotRoundTripsAcrossBackends) {
  SerialBddManager S;
  ParallelBddManager P(0, 8);
  Bdd FS = randomDnf(S, LargeVars, LargeTerms, LargeLits, 77);
  Bdd FP = randomDnf(P, LargeVars, LargeTerms, LargeLits, 77);

  // Serial -> parallel: import rebuilds through the consumer's public
  // hash-consing, so the result must be *the* canonical node for that
  // function in the parallel manager — i.e. structurally identical to
  // building it there directly.
  BddSnapshot FromSerial = exportSnapshot(S, FS);
  Bdd Imported = importSnapshot(P, FromSerial);
  EXPECT_TRUE(structEq(FS, Imported));
  EXPECT_EQ(Imported.node(), FP.node());

  // Parallel -> serial, through the untrusted text form the persistent
  // cache uses.
  BddSnapshot FromParallel = exportSnapshot(P, FP);
  BddSnapshot Decoded;
  ASSERT_TRUE(BddSnapshot::decode(FromParallel.encode(), Decoded));
  EXPECT_EQ(Decoded.nodeCount(), FromParallel.nodeCount());
  Bdd Back = importSnapshot(S, Decoded);
  EXPECT_TRUE(structEq(Back, FP));
  EXPECT_EQ(Back.node(), FS.node());

  // Both backends export the same structure, so the text forms agree
  // byte for byte — the cache-file determinism the server relies on.
  EXPECT_EQ(FromSerial.encode(), FromParallel.encode());
}

TEST(ParallelBdd, ModelAlgorithmsAgreeAcrossBackends) {
  SerialBddManager S;
  ParallelBddManager P(0, 8);
  Bdd FS = randomDnf(S, LargeVars, LargeTerms, LargeLits, 88);
  Bdd FP = randomDnf(P, LargeVars, LargeTerms, LargeLits, 88);
  EXPECT_EQ(S.satCount(FS, LargeVars), P.satCount(FP, LargeVars));
  EXPECT_EQ(S.support(FS), P.support(FP));
  std::vector<bool> VS, VP;
  ASSERT_TRUE(S.satOne(FS, VS));
  ASSERT_TRUE(P.satOne(FP, VP));
  // The generic extraction walks identical structure: same assignment.
  EXPECT_EQ(VS, VP);
  // And the assignments actually satisfy in the *other* backend.
  std::vector<std::pair<unsigned, bool>> Assign;
  for (unsigned V = 0; V < LargeVars; ++V)
    Assign.emplace_back(V, VP[V]);
  EXPECT_TRUE(S.restrict(FS, Assign).isOne());
  EXPECT_TRUE(P.restrict(FP, Assign).isOne());
}
