//===- xpath_test.cpp - XPath parsing, semantics, translation -------------===//
//
// Tests the Fig. 4 fragment parser, the Figs. 5-6 set semantics, and the
// Figs. 7/8/10 translation to Lµ, including the translation-correctness
// property of Prop. 5.1(1): for every tree, every mark position and every
// expression, the evaluator's node set equals the set of nodes where the
// compiled formula holds.
//
//===----------------------------------------------------------------------===//

#include "logic/CycleFree.h"
#include "logic/Eval.h"
#include "tree/Xml.h"
#include "xpath/Compile.h"
#include "xpath/Eval.h"
#include "xpath/Parser.h"

#include <gtest/gtest.h>

#include <random>

using namespace xsa;

namespace {

ExprRef xp(const std::string &S) {
  std::string Err;
  ExprRef E = parseXPath(S, Err);
  EXPECT_NE(E, nullptr) << Err << " in: " << S;
  return E;
}

Document doc(const std::string &Xml) {
  Document D;
  std::string Err;
  EXPECT_TRUE(parseXml(Xml, D, Err)) << Err;
  return D;
}

Document semanticsDoc(); // defined with the semantics tests below

TEST(XPathParser, Basics) {
  EXPECT_EQ(toString(xp("child::book/child::chapter")),
            "child::book/child::chapter");
  EXPECT_EQ(toString(xp("a/b")), "child::a/child::b");
  EXPECT_EQ(toString(xp("/a")), "/child::a");
  EXPECT_EQ(toString(xp("a//b")),
            "child::a/desc-or-self::*/child::b");
  EXPECT_EQ(toString(xp("//a")), "/desc-or-self::*/child::a");
  EXPECT_EQ(toString(xp(".")), "self::*");
  EXPECT_EQ(toString(xp("..")), "parent::*");
  EXPECT_EQ(toString(xp("*")), "child::*");
  EXPECT_EQ(toString(xp("a[b]")), "child::a[child::b]");
  // Boolean qualifier: round-trips through the printer.
  ExprRef Q = xp("a[not(b) and c or d]");
  EXPECT_EQ(toString(Q), toString(xp(toString(Q))));
}

TEST(XPathParser, PaperQueries) {
  // Figure 21 (e10 uses the in-path union extension).
  const char *Queries[] = {
      "/a[.//b[c/*//d]/b[c//d]/b[c/d]]",
      "/a[.//b[c/*//d]/b[c/d]]",
      "a/b//c/foll-sibling::d/e",
      "a/b//d[prec-sibling::c]/e",
      "a/c/following::d/e",
      "a/b[//c]/following::d/e & a/d[preceding::c]/e",
      "*//switch[ancestor::head]//seq//audio[prec-sibling::video]",
      "descendant::a[ancestor::a]",
      "/descendant::*",
      "html/(head | body)",
      "html/head/descendant::*",
      "html/body/descendant::*",
  };
  for (const char *Q : Queries) {
    ExprRef E = xp(Q);
    ASSERT_NE(E, nullptr) << Q;
    // Round-trip through the printer.
    ExprRef E2 = xp(toString(E));
    EXPECT_EQ(toString(E), toString(E2)) << Q;
  }
}

TEST(XPathParser, Axes) {
  const char *AxisNames[] = {
      "self",        "child",        "parent",       "descendant",
      "desc-or-self", "ancestor",    "anc-or-self",  "foll-sibling",
      "prec-sibling", "following",   "preceding",
  };
  for (const char *A : AxisNames) {
    ExprRef E = xp(std::string(A) + "::x");
    ASSERT_NE(E, nullptr) << A;
  }
  // W3C spellings map onto the paper's.
  EXPECT_EQ(toString(xp("following-sibling::a")),
            toString(xp("foll-sibling::a")));
  EXPECT_EQ(toString(xp("descendant-or-self::a")),
            toString(xp("desc-or-self::a")));
}

TEST(XPathParser, Errors) {
  std::string Err;
  EXPECT_EQ(parseXPath("", Err), nullptr);
  EXPECT_EQ(parseXPath("a[", Err), nullptr);
  EXPECT_EQ(parseXPath("a[]", Err), nullptr);
  EXPECT_EQ(parseXPath("a/", Err), nullptr);
  EXPECT_EQ(parseXPath("a | ", Err), nullptr);
  EXPECT_EQ(parseXPath("a)b", Err), nullptr);
  EXPECT_EQ(parseXPath("'unterminated", Err), nullptr);
  EXPECT_EQ(parseXPath("child::\"ab", Err), nullptr);
  // Control characters are rejected inside quoted names: well-formed
  // XPath stays control-free, which service-side request keys rely on.
  EXPECT_EQ(parseXPath(std::string("'a\x1f") + "b'", Err), nullptr);
  EXPECT_EQ(parseXPath("\"a\nb\"", Err), nullptr);
}

TEST(XPathParser, ParenthesizedGroupWithQualifier) {
  // (a/b)[c] qualifies the whole composition — a different AST from
  // a/b[c], and the printer must keep the grouping parens.
  ExprRef Grouped = xp("(a/b)[c]");
  ASSERT_NE(Grouped, nullptr);
  EXPECT_EQ(toString(Grouped), "(child::a/child::b)[child::c]");
  EXPECT_TRUE(astEquals(xp(toString(Grouped)), Grouped));
  EXPECT_FALSE(astEquals(Grouped, xp("a/b[c]")));
  // Both select the same nodes; only the AST shape differs.
  Document D = semanticsDoc();
  EXPECT_EQ(evalXPath(D, xp("(a/c)[b]"), 0), evalXPath(D, xp("a/c[b]"), 0));
}

TEST(XPathParser, QuotedNodeTests) {
  // Quoted node tests admit names that do not lex as plain XPath names,
  // including names containing the *other* quote kind; a doubled
  // delimiter stands for one literal quote (XPath-2.0 style).
  EXPECT_EQ(toString(xp("'it''s'")), "child::\"it's\"");
  EXPECT_EQ(toString(xp("\"say \"\"hi\"\"\"")), "child::'say \"hi\"'");
  EXPECT_EQ(toString(xp("child::'a b'/descendant::\"2nd\"")),
            "child::\"a b\"/descendant::\"2nd\"");
  // Both quote kinds in one name force the doubled-delimiter form.
  ExprRef Both = xp("\"a'\"\"b\"");
  ASSERT_NE(Both, nullptr);
  EXPECT_EQ(toString(Both), "child::\"a'\"\"b\"");
  EXPECT_TRUE(astEquals(xp(toString(Both)), Both));
  // A plain name in quotes is the same symbol as the bare spelling.
  EXPECT_TRUE(astEquals(xp("'a'"), xp("a")));
}

TEST(XPathParser, AbbreviatedDescendantAtStart) {
  // `//x` at expression start expands to /desc-or-self::*/child::x; the
  // rewriter leans on this shape when fusing steps.
  EXPECT_TRUE(astEquals(xp("//a"), xp("/desc-or-self::*/child::a")));
  EXPECT_TRUE(astEquals(xp("//*"), xp("/desc-or-self::*/child::*")));
  EXPECT_TRUE(astEquals(xp("//a//b"),
                        xp("/desc-or-self::*/a/desc-or-self::*/b")));
  EXPECT_TRUE(astEquals(xp("//a[b]"), xp("/desc-or-self::*/child::a[b]")));
  // Relative use keeps the leading step: a//b has no absolute prefix.
  EXPECT_TRUE(astEquals(xp("a//b"), xp("child::a/desc-or-self::*/child::b")));
}

TEST(XPathParser, ChainedPredicates) {
  // a[p][q] nests qualifiers outward: (a[p])[q], not a[p and q] — the
  // ASTs differ even though the two are semantically equivalent.
  ExprRef Chained = xp("a[b][c]");
  ASSERT_NE(Chained, nullptr);
  EXPECT_EQ(toString(Chained), "child::a[child::b][child::c]");
  EXPECT_TRUE(astEquals(xp(toString(Chained)), Chained));
  EXPECT_FALSE(astEquals(Chained, xp("a[b and c]")));
  EXPECT_TRUE(astEquals(xp("a[b][c][d]"), xp("((a[b])[c])[d]")));
  // Semantics agree with the conjunction form.
  Document D = semanticsDoc();
  EXPECT_EQ(evalXPath(D, xp("*[b][c]"), 0), evalXPath(D, xp("*[b and c]"), 0));
}

TEST(XPathParser, UnionAssociativity) {
  // `|` parses left-nested: a | b | c is union(union(a, b), c), the
  // shape the dead-branch rule's arm flattening and rebuildUnion rely
  // on. (A parenthesized group is a different AST — an in-path Alt —
  // so the left-nesting is checked against manually built unions.)
  ExprRef U = xp("a | b | c");
  ASSERT_NE(U, nullptr);
  EXPECT_TRUE(astEquals(U, XPathExpr::unite(xp("a | b"), xp("c"))));
  EXPECT_FALSE(astEquals(U, XPathExpr::unite(xp("a"), xp("b | c"))));
  EXPECT_EQ(toString(U), "child::a | child::b | child::c");
  EXPECT_TRUE(astEquals(xp(toString(U)), U));
  // In-path alternatives associate left too, with explicit parens.
  EXPECT_TRUE(astEquals(xp("x/(a | b | c)"), xp("x/((a | b) | c)")));
  EXPECT_FALSE(astEquals(xp("x/(a | b | c)"), xp("x/(a | (b | c))")));
  Document D = semanticsDoc();
  EXPECT_EQ(evalXPath(D, xp("a | d | a/b"), 0),
            evalXPath(D, xp("a | (d | a/b)"), 0));
}

//===----------------------------------------------------------------------===//
// Printer round-trip property: parseXPath(toString(E)) ≡ E.
//===----------------------------------------------------------------------===//

TEST(XPathPrinter, RoundTripOverCorpus) {
  // The rewrite engine hands optimized queries around as text, so the
  // printer must reproduce an astEquals-equal AST through the parser for
  // every parser-shape expression. Property-check it over the corpus of
  // queries exercised across the test suite (paper queries, axes,
  // qualifiers, unions, quoting, iteration, the rewriter's shapes).
  const char *Corpus[] = {
      // Basics and abbreviations.
      "a", "*", ".", "..", "/a", "//a", "//a//b", "a/b", "a//b", "a[b]",
      ".//a[.//b]", "a[//c]",
      "child::book/child::chapter", "a[not(b) and c or d]",
      // Figure 21 paper queries.
      "/a[.//b[c/*//d]/b[c//d]/b[c/d]]",
      "/a[.//b[c/*//d]/b[c/d]]",
      "a/b//c/foll-sibling::d/e",
      "a/b//d[prec-sibling::c]/e",
      "a/c/following::d/e",
      "a/b[//c]/following::d/e & a/d[preceding::c]/e",
      "*//switch[ancestor::head]//seq//audio[prec-sibling::video]",
      "descendant::a[ancestor::a]",
      "/descendant::*",
      "html/(head | body)",
      // Every axis, W3C spellings included.
      "self::x", "parent::x", "desc-or-self::x", "anc-or-self::x",
      "following-sibling::a", "descendant-or-self::a", "preceding::a",
      // Qualifier shapes.
      "*[b and c]", "*[b or c]", "*[not(c/b)]", "a[b][c]", "a[b][c][d]",
      "*[b and not(c)]/..",
      // Unions, intersections, alternatives, iteration.
      "a | b | c", "a | b/c", "descendant::* & /descendant::a",
      "x/(a | b | c)", "(a)+", "(child::*)+", "((a/b)+)+",
      "(parent::*)+/self::r",
      // Quoted node tests: spaces, digits, either (or both) quote kinds.
      "'a b'", "\"2nd\"", "'it''s'", "\"say \"\"hi\"\"\"", "\"a'\"\"b\"",
      "child::'a b'/descendant::\"2nd\"[self::'odd name']",
      // Parenthesized groups with qualifiers.
      "(a/b)[c]", "(a/b)[c]/self::*", "x/(a//b)[c]",
      // Shapes the rewriter emits.
      "child::a[child::b]", "child::a[foll-sibling::c[child::x]]",
      "/desc-or-self::article[child::meta]/child::title",
  };
  for (const char *Src : Corpus) {
    ExprRef E = xp(Src);
    ASSERT_NE(E, nullptr) << Src;
    std::string Printed = toString(E);
    std::string Err;
    ExprRef Back = parseXPath(Printed, Err);
    ASSERT_NE(Back, nullptr) << Src << " printed as " << Printed << ": "
                             << Err;
    EXPECT_TRUE(astEquals(Back, E)) << Src << " printed as " << Printed;
    // And the print itself is a fixpoint.
    EXPECT_EQ(toString(Back), Printed) << Src;
  }
}

//===----------------------------------------------------------------------===//
// Set semantics (Figs. 5-6).
//===----------------------------------------------------------------------===//

// Test document: r[a[b c[b]] d[c]] with ids r=0 a=1 b=2 c=3 b=4 d=5 c=6.
Document semanticsDoc() {
  return doc("<r><a><b/><c><b/></c></a><d><c/></d></r>");
}

TEST(XPathEval, ChildAndDescendant) {
  Document D = semanticsDoc();
  EXPECT_EQ(evalXPath(D, xp("a"), 0), (NodeSet{1}));
  EXPECT_EQ(evalXPath(D, xp("*"), 0), (NodeSet{1, 5}));
  EXPECT_EQ(evalXPath(D, xp("a/b"), 0), (NodeSet{2}));
  EXPECT_EQ(evalXPath(D, xp("descendant::b"), 0), (NodeSet{2, 4}));
  EXPECT_EQ(evalXPath(D, xp("descendant::c"), 0), (NodeSet{3, 6}));
  EXPECT_EQ(evalXPath(D, xp(".//b"), 0), (NodeSet{2, 4}));
}

TEST(XPathEval, UpwardAxes) {
  Document D = semanticsDoc();
  EXPECT_EQ(evalXPath(D, xp("parent::*"), 2), (NodeSet{1}));
  EXPECT_EQ(evalXPath(D, xp("ancestor::*"), 4), (NodeSet{0, 1, 3}));
  EXPECT_EQ(evalXPath(D, xp("anc-or-self::*"), 4), (NodeSet{0, 1, 3, 4}));
  EXPECT_EQ(evalXPath(D, xp(".."), 6), (NodeSet{5}));
}

TEST(XPathEval, SiblingAxes) {
  Document D = semanticsDoc();
  EXPECT_EQ(evalXPath(D, xp("foll-sibling::*"), 2), (NodeSet{3}));
  EXPECT_EQ(evalXPath(D, xp("prec-sibling::*"), 3), (NodeSet{2}));
  EXPECT_EQ(evalXPath(D, xp("following::*"), 2), (NodeSet{3, 4, 5, 6}));
  EXPECT_EQ(evalXPath(D, xp("preceding::*"), 5), (NodeSet{1, 2, 3, 4}));
}

TEST(XPathEval, Qualifiers) {
  Document D = semanticsDoc();
  // Children of r with a c child.
  EXPECT_EQ(evalXPath(D, xp("*[c]"), 0), (NodeSet{1, 5}));
  // Children of r with a c child that has a b child.
  EXPECT_EQ(evalXPath(D, xp("*[c/b]"), 0), (NodeSet{1}));
  EXPECT_EQ(evalXPath(D, xp("*[not(c/b)]"), 0), (NodeSet{5}));
  EXPECT_EQ(evalXPath(D, xp("*[b and c]"), 0), (NodeSet{1}));
  EXPECT_EQ(evalXPath(D, xp("*[b or c]"), 0), (NodeSet{1, 5}));
}

TEST(XPathEval, AbsoluteRestartsAtRoot) {
  Document D = semanticsDoc();
  // From deep inside the tree, /p restarts at the top-level ancestor.
  EXPECT_EQ(evalXPath(D, xp("/descendant::b"), 6), (NodeSet{2, 4}));
  // In the paper's semantics (Fig. 6) the leading / navigates *to* the
  // root node, so /r asks for r-children of the root — there are none —
  // while /self::r selects the root itself.
  EXPECT_EQ(evalXPath(D, xp("/r"), 4), (NodeSet{}));
  EXPECT_EQ(evalXPath(D, xp("/self::r"), 4), (NodeSet{0}));
  EXPECT_EQ(evalXPath(D, xp("/a/c"), 4), (NodeSet{3}));
}

TEST(XPathEval, UnionIntersection) {
  Document D = semanticsDoc();
  EXPECT_EQ(evalXPath(D, xp("a | d"), 0), (NodeSet{1, 5}));
  EXPECT_EQ(evalXPath(D, xp("descendant::c & d/c"), 0), (NodeSet{6}));
  EXPECT_EQ(evalXPath(D, xp("(a | d)/c"), 0), (NodeSet{3, 6}));
}

//===----------------------------------------------------------------------===//
// Translation (Figs. 7/8/10) against the evaluator: Prop. 5.1.
//===----------------------------------------------------------------------===//

/// Checks Prop 5.1(1) on one document and one expression: the set of
/// nodes where E→⟦e⟧⊤ holds (with the document's mark as context) equals
/// the evaluator's result.
void expectTranslationCorrect(const Document &D, const ExprRef &E) {
  FormulaFactory FF;
  Formula Psi = compileXPath(FF, E, FF.trueF());
  EXPECT_TRUE(isCycleFree(Psi)) << toString(E);
  DynBitset FromFormula = evalFormula(D, FF, Psi);
  NodeSet FromEval = evalXPath(D, E);
  for (NodeId N = 0; N < static_cast<NodeId>(D.size()); ++N)
    EXPECT_EQ(FromFormula.test(N), FromEval.count(N) != 0)
        << toString(E) << " at node " << N << " (mark at "
        << D.markedNode() << ")";
}

TEST(XPathCompile, PaperExampleTranslation) {
  // Figure 9: child::a[child::b].
  FormulaFactory FF;
  Formula Psi = compileXPath(FF, xp("a[b]"), FF.trueF());
  EXPECT_TRUE(isCycleFree(Psi));
  // Selected nodes are named a, have a parent chain to the mark, and a b
  // child: check on a concrete tree. Mark at root r.
  Document D = doc("<r xsa:start=\"true\"><a><b/></a><a><c/></a></r>");
  DynBitset R = evalFormula(D, FF, Psi);
  EXPECT_TRUE(R.test(1));
  EXPECT_FALSE(R.test(3));
  EXPECT_EQ(R.count(), 1u);
}

TEST(XPathCompile, SizeIsLinear) {
  // Prop 5.1(3): translated size grows linearly with expression size.
  FormulaFactory FF;
  std::string Path = "a";
  size_t PrevSize = 0;
  std::vector<size_t> Deltas;
  for (int I = 0; I < 6; ++I) {
    Formula Psi = compileXPath(FF, xp(Path), FF.trueF());
    if (PrevSize)
      Deltas.push_back(Psi->size() - PrevSize);
    PrevSize = Psi->size();
    Path += "/descendant::a[b]";
  }
  // Each appended step adds a constant amount.
  for (size_t I = 1; I < Deltas.size(); ++I)
    EXPECT_EQ(Deltas[I], Deltas[0]) << "step " << I;
}

class TranslationPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(TranslationPropertyTest, AgreesWithEvaluator) {
  std::mt19937 Rng(GetParam());
  const char *Labels[] = {"a", "b", "c", "d"};
  // Random single-rooted document of up to 10 nodes. (Multi-root hedges
  // are deliberately excluded: on a hedge, Fig. 8's absolute-path
  // translation lets any top-level node left of the mark count as "the
  // root", while root(F) in Fig. 6 is the mark's own top-level ancestor;
  // XML documents are single-rooted, where both coincide.)
  Document D;
  int N = 1 + static_cast<int>(Rng() % 10);
  for (int I = 0; I < N; ++I) {
    NodeId Parent =
        D.empty() ? InvalidNodeId
                  : static_cast<NodeId>(Rng() % D.size());
    D.addNode(Labels[Rng() % 4], Parent);
  }
  D.setMark(static_cast<NodeId>(Rng() % D.size()));
  const char *Exprs[] = {
      "a",
      "*",
      "a/b",
      "descendant::b",
      "/descendant::a",
      "..",
      "ancestor::a",
      "a[b]",
      "*[not(b)]",
      "foll-sibling::*",
      "preceding::b",
      "following::a/b",
      "descendant::a[foll-sibling::b]",
      "a | b/c",
      "descendant::* & /descendant::a",
      "self::a/descendant::b[prec-sibling::c]",
      ".//a[.//b]",
      "*[b and not(c)]/..",
  };
  for (const char *Src : Exprs)
    expectTranslationCorrect(D, xp(Src));
}

INSTANTIATE_TEST_SUITE_P(Seeds, TranslationPropertyTest,
                         ::testing::Range(1, 26));

} // namespace
