//===- bdd_test.cpp - Unit and property tests for the BDD package ---------===//
//
// The symbolic solver (§7 of the paper) is only as correct as this
// substrate, so we test it exhaustively against truth tables on small
// variable counts, plus targeted tests for quantification, relational
// products, restriction, model counting, extraction and GC.
//
//===----------------------------------------------------------------------===//

#include "bdd/Bdd.h"
#include "bdd/Snapshot.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>

using namespace xsa;

namespace {

TEST(Bdd, Constants) {
  SerialBddManager M;
  EXPECT_TRUE(M.one().isOne());
  EXPECT_TRUE(M.zero().isZero());
  EXPECT_NE(M.one(), M.zero());
  EXPECT_EQ(!M.one(), M.zero());
  EXPECT_EQ(!M.zero(), M.one());
}

TEST(Bdd, VarBasics) {
  SerialBddManager M(4);
  Bdd X = M.var(0), Y = M.var(1);
  EXPECT_EQ(X & X, X);
  EXPECT_EQ(X | X, X);
  EXPECT_EQ(X ^ X, M.zero());
  EXPECT_EQ(X & !X, M.zero());
  EXPECT_EQ(X | !X, M.one());
  EXPECT_EQ(X & Y, Y & X);
  EXPECT_EQ(X | Y, Y | X);
  EXPECT_EQ(!(X & Y), (!X) | (!Y));
  EXPECT_EQ(!(X | Y), (!X) & (!Y));
  EXPECT_EQ(X.iff(Y), ((!X) | Y) & ((!Y) | X));
  EXPECT_EQ(X.implies(Y), (!X) | Y);
}

TEST(Bdd, IteAgreesWithDefinition) {
  SerialBddManager M(3);
  Bdd F = M.var(0), G = M.var(1), H = M.var(2);
  EXPECT_EQ(M.ite(F, G, H), (F & G) | ((!F) & H));
  EXPECT_EQ(M.ite(M.one(), G, H), G);
  EXPECT_EQ(M.ite(M.zero(), G, H), H);
  EXPECT_EQ(M.ite(F, M.one(), M.zero()), F);
  EXPECT_EQ(M.ite(F, M.zero(), M.one()), !F);
}

TEST(Bdd, NegationIsInvolutive) {
  SerialBddManager M(3);
  Bdd F = (M.var(0) & M.var(1)) | ((!M.var(2)) & M.var(0));
  EXPECT_EQ(!(!F), F);
}

TEST(Bdd, ExistsAndForall) {
  SerialBddManager M(3);
  Bdd X = M.var(0), Y = M.var(1), Z = M.var(2);
  Bdd F = (X & Y) | (Z & !Y);
  Bdd CY = M.cube({1});
  // exists y. F = X | Z (y=1 gives X, y=0 gives Z)
  EXPECT_EQ(M.exists(F, CY), X | Z);
  // forall y. F = X & Z
  EXPECT_EQ(M.forall(F, CY), X & Z);
  // Quantifying a variable not in the support is the identity.
  Bdd C3 = M.cube({3});
  EXPECT_EQ(M.exists(F, C3), F);
  // Quantifying everything collapses to a constant.
  EXPECT_EQ(M.exists(F, M.cube({0, 1, 2})), M.one());
  EXPECT_EQ(M.forall(F, M.cube({0, 1, 2})), M.zero());
}

TEST(Bdd, AndExistsMatchesComposition) {
  SerialBddManager M(4);
  Bdd X = M.var(0), Y = M.var(1), Z = M.var(2), W = M.var(3);
  Bdd F = X.iff(Y) & Z.implies(W);
  Bdd G = (Y | W) & ((!Z) | X);
  Bdd C = M.cube({1, 3});
  EXPECT_EQ(M.andExists(F, G, C), M.exists(F & G, C));
}

TEST(Bdd, CofactorAndRestrict) {
  SerialBddManager M(3);
  Bdd X = M.var(0), Y = M.var(1), Z = M.var(2);
  Bdd F = (X & Y) | Z;
  EXPECT_EQ(M.cofactor(F, 0, true), Y | Z);
  EXPECT_EQ(M.cofactor(F, 0, false), Z);
  EXPECT_EQ(M.restrict(F, {{0, true}, {1, true}}), M.one());
  EXPECT_EQ(M.restrict(F, {{0, false}, {2, false}}), M.zero());
}

TEST(Bdd, SatOneFindsAModel) {
  SerialBddManager M(4);
  Bdd F = (M.var(0) ^ M.var(1)) & M.var(3);
  std::vector<bool> Values;
  ASSERT_TRUE(M.satOne(F, Values));
  EXPECT_NE(Values[0], Values[1]);
  EXPECT_TRUE(Values[3]);
  EXPECT_FALSE(M.satOne(M.zero(), Values));
  ASSERT_TRUE(M.satOne(M.one(), Values));
}

TEST(Bdd, SatCount) {
  SerialBddManager M(3);
  Bdd X = M.var(0), Y = M.var(1);
  EXPECT_DOUBLE_EQ(M.satCount(M.one(), 3), 8.0);
  EXPECT_DOUBLE_EQ(M.satCount(M.zero(), 3), 0.0);
  EXPECT_DOUBLE_EQ(M.satCount(X, 3), 4.0);
  EXPECT_DOUBLE_EQ(M.satCount(X & Y, 3), 2.0);
  EXPECT_DOUBLE_EQ(M.satCount(X ^ Y, 3), 4.0);
  EXPECT_DOUBLE_EQ(M.satCount(X, 1), 1.0); // only x=1 over domain {x}
}

TEST(Bdd, Support) {
  SerialBddManager M(5);
  Bdd F = (M.var(1) & M.var(3)) | M.var(4);
  EXPECT_EQ(M.support(F), (std::vector<unsigned>{1, 3, 4}));
  EXPECT_TRUE(M.support(M.one()).empty());
}

TEST(Bdd, CubeIsSortedConjunction) {
  SerialBddManager M(5);
  EXPECT_EQ(M.cube({3, 1, 4, 1}), M.var(1) & M.var(3) & M.var(4));
  EXPECT_EQ(M.cube({}), M.one());
}

TEST(Bdd, GcKeepsLiveNodes) {
  SerialBddManager M(8);
  Bdd Keep = M.var(0) & M.var(1);
  {
    // Create garbage.
    Bdd Tmp = M.one();
    for (unsigned I = 0; I < 8; ++I)
      Tmp = Tmp ^ M.var(I);
  }
  size_t Before = M.numNodes();
  M.gc();
  EXPECT_LE(M.numNodes(), Before);
  // The kept function still works after collection.
  EXPECT_EQ(Keep & M.var(0), Keep);
  EXPECT_EQ(M.cofactor(Keep, 0, true), M.var(1));
}

TEST(Bdd, RemapVarsShiftsMonotonically) {
  SerialBddManager M(8);
  // F over even variables; shift each var to its odd neighbor.
  Bdd F = (M.var(0) & M.var(2)) | (!M.var(4) & M.var(6));
  std::vector<unsigned> Map(8);
  for (unsigned I = 0; I < 8; ++I)
    Map[I] = I | 1;
  Bdd G = M.remapVars(F, Map);
  Bdd Expected = (M.var(1) & M.var(3)) | (!M.var(5) & M.var(7));
  EXPECT_EQ(G, Expected);
  // Identity map is the identity.
  std::vector<unsigned> Id(8);
  for (unsigned I = 0; I < 8; ++I)
    Id[I] = I;
  EXPECT_EQ(M.remapVars(F, Id), F);
  // Constants are unaffected.
  EXPECT_EQ(M.remapVars(M.one(), Map), M.one());
}

TEST(Bdd, QuantifierDuality) {
  SerialBddManager M(4);
  Bdd F = (M.var(0) & M.var(1)) ^ (M.var(2) | M.var(3));
  Bdd C = M.cube({1, 3});
  // ∀x.F = ¬∃x.¬F.
  EXPECT_EQ(M.forall(F, C), !M.exists(!F, C));
  // Quantification is idempotent.
  EXPECT_EQ(M.exists(M.exists(F, C), C), M.exists(F, C));
  // ∃ distributes over ∨, ∀ over ∧.
  Bdd G = M.var(1).implies(M.var(2));
  EXPECT_EQ(M.exists(F | G, C), M.exists(F, C) | M.exists(G, C));
  EXPECT_EQ(M.forall(F & G, C), M.forall(F, C) & M.forall(G, C));
}

TEST(Bdd, AndExistsOnDisjointSupports) {
  SerialBddManager M(6);
  Bdd F = M.var(0) & M.var(1);
  Bdd G = M.var(4) | M.var(5);
  // Quantifying variables absent from both is a plain conjunction.
  EXPECT_EQ(M.andExists(F, G, M.cube({2, 3})), F & G);
  // Quantifying G's support out of F∧G leaves F scaled by SAT(G).
  EXPECT_EQ(M.andExists(F, G, M.cube({4, 5})), F);
}

TEST(Bdd, NodeCount) {
  SerialBddManager M(3);
  EXPECT_EQ(M.one().nodeCount(), 1u);
  EXPECT_EQ(M.var(0).nodeCount(), 2u);
  EXPECT_GE((M.var(0) ^ M.var(1) ^ M.var(2)).nodeCount(), 4u);
}

//===----------------------------------------------------------------------===//
// Exhaustive differential test: random expressions over <= 4 variables are
// evaluated both as BDDs and against brute-force truth tables.
//===----------------------------------------------------------------------===//

/// A syntax tree over n variables paired with its 16-row truth table (bits
/// of a uint16_t indexed by assignment).
struct RandomFunc {
  Bdd F;
  uint16_t Table;
};

class BddRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(BddRandomTest, AgreesWithTruthTable) {
  std::mt19937 Rng(GetParam());
  SerialBddManager M(4);
  uint16_t VarTable[4];
  for (unsigned V = 0; V < 4; ++V) {
    uint16_t T = 0;
    for (unsigned A = 0; A < 16; ++A)
      if ((A >> V) & 1)
        T |= uint16_t(1) << A;
    VarTable[V] = T;
  }
  std::vector<RandomFunc> Pool;
  for (unsigned V = 0; V < 4; ++V)
    Pool.push_back({M.var(V), VarTable[V]});
  Pool.push_back({M.one(), 0xffff});
  Pool.push_back({M.zero(), 0});

  auto Pick = [&]() -> RandomFunc & {
    return Pool[Rng() % Pool.size()];
  };
  for (int Step = 0; Step < 300; ++Step) {
    RandomFunc &A = Pick();
    RandomFunc &B = Pick();
    RandomFunc R;
    switch (Rng() % 5) {
    case 0:
      R = {A.F & B.F, uint16_t(A.Table & B.Table)};
      break;
    case 1:
      R = {A.F | B.F, uint16_t(A.Table | B.Table)};
      break;
    case 2:
      R = {A.F ^ B.F, uint16_t(A.Table ^ B.Table)};
      break;
    case 3:
      R = {!A.F, uint16_t(~A.Table)};
      break;
    default: {
      unsigned V = Rng() % 4;
      // exists v. A
      Bdd Q = M.exists(A.F, M.cube({V}));
      uint16_t T = 0;
      for (unsigned Asg = 0; Asg < 16; ++Asg) {
        unsigned A0 = Asg & ~(1u << V), A1 = Asg | (1u << V);
        if ((A.Table >> A0) & 1 || (A.Table >> A1) & 1)
          T |= uint16_t(1) << Asg;
      }
      R = {Q, T};
      break;
    }
    }
    // Verify against the truth table via restrict.
    for (unsigned Asg = 0; Asg < 16; ++Asg) {
      std::vector<std::pair<unsigned, bool>> Assignment;
      for (unsigned V = 0; V < 4; ++V)
        Assignment.push_back({V, ((Asg >> V) & 1) != 0});
      bool Expected = (R.Table >> Asg) & 1;
      Bdd Restricted = M.restrict(R.F, Assignment);
      ASSERT_TRUE(Restricted.isConst());
      ASSERT_EQ(Restricted.isOne(), Expected)
          << "step " << Step << " assignment " << Asg;
    }
    Pool.push_back(R);
    if (Pool.size() > 40)
      Pool.erase(Pool.begin() + 6); // keep leaves
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BddRandomTest, ::testing::Range(1, 9));

//===----------------------------------------------------------------------===//
// Portable snapshots
//===----------------------------------------------------------------------===//

TEST(Snapshot, RoundTripsWithinAndAcrossManagers) {
  SerialBddManager M(6);
  Bdd F = (M.var(0) & M.var(2)) | (!M.var(1) & M.var(4)) |
          (M.var(3) ^ M.var(5));
  BddSnapshot S = exportSnapshot(M, F);
  EXPECT_GT(S.nodeCount(), 0u);
  EXPECT_EQ(importSnapshot(M, S), F);

  // A fresh manager rebuilds the same function over the same variables.
  SerialBddManager M2;
  Bdd G = importSnapshot(M2, S);
  for (unsigned Asg = 0; Asg < 64; ++Asg) {
    std::vector<std::pair<unsigned, bool>> Assignment;
    for (unsigned V = 0; V < 6; ++V)
      Assignment.push_back({V, ((Asg >> V) & 1) != 0});
    EXPECT_EQ(M2.restrict(G, Assignment).isOne(),
              M.restrict(F, Assignment).isOne())
        << "assignment " << Asg;
  }
}

TEST(Snapshot, ConstantsAndVarRemap) {
  SerialBddManager M(4);
  EXPECT_TRUE(importSnapshot(M, exportSnapshot(M, M.zero())).isZero());
  EXPECT_TRUE(importSnapshot(M, exportSnapshot(M, M.one())).isOne());

  // Export over even variables, compact to half indices and widen back:
  // the solver's lean-member translation.
  Bdd F = M.var(0) & !M.var(2);
  BddSnapshot S = exportSnapshot(M, F);
  S.mapVars([](unsigned V) { return V / 2; });
  BddSnapshot Widened = S;
  Widened.mapVars([](unsigned V) { return 2 * V; });
  EXPECT_EQ(importSnapshot(M, Widened), F);
}

TEST(Snapshot, TextEncodingRoundTripsAndRejectsGarbage) {
  SerialBddManager M(5);
  Bdd F = (M.var(0) | M.var(1)) & (!M.var(3) | M.var(4));
  BddSnapshot S = exportSnapshot(M, F);
  BddSnapshot Back;
  ASSERT_TRUE(BddSnapshot::decode(S.encode(), Back));
  EXPECT_EQ(importSnapshot(M, Back), F);

  BddSnapshot Junk;
  EXPECT_FALSE(BddSnapshot::decode("", Junk));
  EXPECT_FALSE(BddSnapshot::decode("not numbers", Junk));
  EXPECT_FALSE(BddSnapshot::decode("2 1 0 0 1 trailing", Junk));
  // Child referencing a later entry (not topological).
  EXPECT_FALSE(BddSnapshot::decode("2 1 0 3 1", Junk));
  // Root out of range.
  EXPECT_FALSE(BddSnapshot::decode("9 1 0 0 1", Junk));
  // Low == High is never produced by a reduced BDD.
  EXPECT_FALSE(BddSnapshot::decode("2 1 0 1 1", Junk));
  // An absurd node count must not allocate.
  EXPECT_FALSE(BddSnapshot::decode("0 4000000000", Junk));
  // An absurd variable index must not become an ensureVars allocation
  // on import (and would wrap the solver's 2x widening).
  EXPECT_FALSE(BddSnapshot::decode("2 1 4000000000 0 1", Junk));
}

} // namespace
