//===- treegrammar_test.cpp - General regular tree grammars ---------------===//
//
// §5.2 embeds *regular tree languages* — strictly more than DTDs: the
// content of an element may depend on its context (non-local types, the
// Relax NG / XML Schema power that "gathers all of them" after Murata et
// al.). This suite exercises the compact-syntax reader, the set-based
// membership test, the generalized Fig. 13 binarization, the Lµ
// compilation, and solver-level analyses that are impossible under any
// DTD for the same documents.
//
//===----------------------------------------------------------------------===//

#include "analysis/Problems.h"
#include "logic/CycleFree.h"
#include "logic/Eval.h"
#include "tree/Xml.h"
#include "xpath/Compile.h"
#include "xpath/Eval.h"
#include "xpath/Parser.h"
#include "xtype/Compile.h"
#include "xtype/TreeGrammar.h"

#include <gtest/gtest.h>

using namespace xsa;

namespace {

ExprRef xp(const std::string &S) {
  std::string Err;
  ExprRef E = parseXPath(S, Err);
  EXPECT_NE(E, nullptr) << Err << " in: " << S;
  return E;
}

Document doc(const std::string &Xml) {
  Document D;
  std::string Err;
  EXPECT_TRUE(parseXml(Xml, D, Err)) << Err;
  return D;
}

TreeGrammar grammar(const char *Src) {
  TreeGrammar G;
  std::string Err;
  EXPECT_TRUE(parseTreeGrammar(Src, G, Err)) << Err;
  return G;
}

// A non-local type: a <b> directly under the root contains <c>+, while
// a <b> nested under another <b>'s <c> contains nothing. No DTD can
// express this (one content model per element name).
const char *NonLocal = R"rnc(
  start = element a { outer-b* }
  outer-b = element b { inner-c+ }
  inner-c = element c { element b { empty }* }
)rnc";

TEST(TreeGrammar, ParseErrors) {
  TreeGrammar G;
  std::string Err;
  EXPECT_FALSE(parseTreeGrammar("", G, Err));
  TreeGrammar G2;
  EXPECT_FALSE(parseTreeGrammar("start = element a { undefined-ref }", G2, Err));
  EXPECT_NE(Err.find("undefined"), std::string::npos);
  TreeGrammar G3;
  // Recursion not crossing an element is ill-formed.
  EXPECT_FALSE(parseTreeGrammar("start = element a { x } x = x | empty",
                                G3, Err));
  TreeGrammar G4;
  // The start pattern must be one element.
  EXPECT_FALSE(parseTreeGrammar(
      "start = element a { empty }, element b { empty }", G4, Err));
}

TEST(TreeGrammar, MembershipNonLocal) {
  TreeGrammar G = grammar(NonLocal);
  EXPECT_TRUE(G.accepts(doc("<a/>")));
  EXPECT_TRUE(G.accepts(doc("<a><b><c/></b></a>")));
  EXPECT_TRUE(G.accepts(doc("<a><b><c><b/><b/></c><c/></b></a>")));
  // Outer b requires at least one c.
  EXPECT_FALSE(G.accepts(doc("<a><b/></a>")));
  // Inner b (under c) must be empty: no grandchildren.
  EXPECT_FALSE(G.accepts(doc("<a><b><c><b><c/></b></c></b></a>")));
  std::string Why;
  EXPECT_FALSE(G.accepts(doc("<c/>"), &Why));
  EXPECT_FALSE(Why.empty());
}

TEST(TreeGrammar, RecursionThroughElements) {
  // Recursive named patterns are fine when they cross an element.
  TreeGrammar G = grammar(R"rnc(
    start = element doc { tree* }
    tree = element node { tree* }
  )rnc");
  EXPECT_TRUE(G.accepts(doc("<doc/>")));
  EXPECT_TRUE(
      G.accepts(doc("<doc><node><node/><node><node/></node></node></doc>")));
  EXPECT_FALSE(G.accepts(doc("<doc><leaf/></doc>")));
}

TEST(TreeGrammar, BinarizeAndCompileAgreeWithMembership) {
  TreeGrammar G = grammar(NonLocal);
  BinaryTypeGrammar B = G.binarize();
  FormulaFactory FF;
  Formula T = compileType(FF, B);
  EXPECT_TRUE(isCycleFree(T));
  const char *Docs[] = {
      "<a/>",
      "<a><b><c/></b></a>",
      "<a><b><c><b/></c></b></a>",
      "<a><b/></a>",
      "<a><b><c><b><c/></b></c></b></a>",
      "<b><c/></b>",
      "<a><c/></a>",
  };
  for (const char *Src : Docs) {
    Document D = doc(Src);
    bool Member = G.accepts(D);
    bool Holds = evalFormulaAt(D, FF, T, D.roots()[0]);
    EXPECT_EQ(Holds, Member) << Src;
  }
}

TEST(TreeGrammar, SolverDistinguishesContexts) {
  // The payoff: context-dependent static analysis. Under the non-local
  // grammar, a b under a c is always a leaf, while a b under the root
  // always has a c child — queries the solver separates even though
  // both nodes are named b.
  TreeGrammar G = grammar(NonLocal);
  FormulaFactory FF;
  Formula T = FF.conj(compileType(FF, G.binarize()), rootFormula(FF));
  Analyzer An(FF);
  // Inner b's never have children.
  EXPECT_TRUE(An.emptiness(xp("//c/b/*"), T).Holds);
  // Outer b's always do: //a-root/b[not(c)] is empty.
  EXPECT_TRUE(An.emptiness(xp("/self::a/b[not(c)]"), T).Holds);
  // And the distinction is real: b's with children do exist...
  AnalysisResult R = An.emptiness(xp("//b[*]"), T);
  EXPECT_FALSE(R.Holds);
  ASSERT_TRUE(R.Tree.has_value());
  std::string Why;
  EXPECT_TRUE(G.accepts(*R.Tree, &Why)) << Why << printXml(*R.Tree);
  // ...and containment under the type: every b with children is a child
  // of the root (false without the grammar).
  EXPECT_TRUE(An.containment(xp("//b[*]"), T, xp("/self::a/b"), T).Holds);
  EXPECT_FALSE(An.containment(xp("//b[*]"), FF.trueF(), xp("/self::a/b"),
                              FF.trueF())
                   .Holds);
}

TEST(TreeGrammar, DtdExpressibleGrammarsMatchDtds) {
  // On a local grammar, the tree-grammar pipeline and the DTD pipeline
  // accept the same documents.
  TreeGrammar G = grammar(R"rnc(
    start = element article { element meta { element title { empty } },
                              (element text { empty }
                               | element redirect { empty }) }
  )rnc");
  const char *Docs[] = {
      "<article><meta><title/></meta><text/></article>",
      "<article><meta><title/></meta><redirect/></article>",
      "<article><text/></article>",
      "<article><meta><title/></meta></article>",
  };
  FormulaFactory FF;
  Formula T = compileType(FF, G.binarize());
  for (const char *Src : Docs) {
    Document D = doc(Src);
    EXPECT_EQ(G.accepts(D), evalFormulaAt(D, FF, T, D.roots()[0])) << Src;
  }
}

} // namespace
