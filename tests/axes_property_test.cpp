//===- axes_property_test.cpp - Algebraic laws of the XPath axes ----------===//
//
// Property sweeps on random documents checking the classic axis algebra
// that the Fig. 5 semantics must satisfy, plus symmetry laws that the
// qualifier translation (Fig. 10) relies on: A←⟦a⟧ = A→⟦symmetric(a)⟧ is
// only sound if the symmetric axis inverts the original as a relation.
//
//===----------------------------------------------------------------------===//

#include "tree/Document.h"
#include "xpath/Eval.h"

#include <gtest/gtest.h>

#include <random>

using namespace xsa;

namespace {

Document randomDoc(std::mt19937 &Rng, int MaxNodes) {
  Document D;
  const char *Labels[] = {"a", "b", "c"};
  int N = 1 + static_cast<int>(Rng() % MaxNodes);
  for (int I = 0; I < N; ++I) {
    NodeId Parent =
        D.empty() ? InvalidNodeId : static_cast<NodeId>(Rng() % D.size());
    D.addNode(Labels[Rng() % 3], Parent);
  }
  return D;
}

class AxesPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(AxesPropertyTest, PartitionOfTheDocument) {
  // For any node x of a single-rooted document:
  // {x} ⊎ ancestor(x) ⊎ descendant(x) ⊎ preceding(x) ⊎ following(x)
  // = all nodes.
  std::mt19937 Rng(GetParam());
  Document D = randomDoc(Rng, 20);
  for (NodeId X = 0; X < static_cast<NodeId>(D.size()); ++X) {
    NodeSet Self{X};
    NodeSet Anc = evalAxis(D, Axis::Ancestor, Self);
    NodeSet Desc = evalAxis(D, Axis::Descendant, Self);
    NodeSet Prec = evalAxis(D, Axis::Preceding, Self);
    NodeSet Foll = evalAxis(D, Axis::Following, Self);
    size_t Total = 1 + Anc.size() + Desc.size() + Prec.size() + Foll.size();
    EXPECT_EQ(Total, D.size()) << "node " << X;
    // Pairwise disjoint.
    auto Disjoint = [](const NodeSet &A, const NodeSet &B) {
      for (NodeId N : A)
        if (B.count(N))
          return false;
      return true;
    };
    EXPECT_TRUE(Disjoint(Anc, Desc));
    EXPECT_TRUE(Disjoint(Anc, Prec));
    EXPECT_TRUE(Disjoint(Anc, Foll));
    EXPECT_TRUE(Disjoint(Desc, Prec));
    EXPECT_TRUE(Disjoint(Desc, Foll));
    EXPECT_TRUE(Disjoint(Prec, Foll));
    EXPECT_FALSE(Anc.count(X));
    EXPECT_FALSE(Desc.count(X));
  }
}

TEST_P(AxesPropertyTest, SymmetricAxesInvert) {
  // y ∈ a(x) ⟺ x ∈ symmetric(a)(y), for every axis (Fig. 10's
  // soundness condition).
  std::mt19937 Rng(GetParam());
  Document D = randomDoc(Rng, 16);
  const Axis All[] = {Axis::Self,       Axis::Child,       Axis::Parent,
                      Axis::Descendant, Axis::DescOrSelf,  Axis::Ancestor,
                      Axis::AncOrSelf,  Axis::FollSibling, Axis::PrecSibling,
                      Axis::Following,  Axis::Preceding};
  for (Axis A : All) {
    Axis S = symmetricAxis(A);
    for (NodeId X = 0; X < static_cast<NodeId>(D.size()); ++X) {
      NodeSet Forward = evalAxis(D, A, {X});
      for (NodeId Y = 0; Y < static_cast<NodeId>(D.size()); ++Y) {
        bool YInAX = Forward.count(Y) != 0;
        bool XInSY = evalAxis(D, S, {Y}).count(X) != 0;
        EXPECT_EQ(YInAX, XInSY)
            << axisName(A) << " x=" << X << " y=" << Y;
      }
    }
  }
}

TEST_P(AxesPropertyTest, CompositionLaws) {
  std::mt19937 Rng(GetParam() + 1000);
  Document D = randomDoc(Rng, 16);
  NodeSet All;
  for (NodeId N = 0; N < static_cast<NodeId>(D.size()); ++N)
    All.insert(N);
  // desc-or-self = self ∪ descendant; anc-or-self = self ∪ ancestor.
  EXPECT_EQ(evalAxis(D, Axis::DescOrSelf, All).size(), All.size());
  for (NodeId X = 0; X < static_cast<NodeId>(D.size()); ++X) {
    NodeSet DoS = evalAxis(D, Axis::DescOrSelf, {X});
    NodeSet Desc = evalAxis(D, Axis::Descendant, {X});
    Desc.insert(X);
    EXPECT_EQ(DoS, Desc);
    // descendant = child ∪ child/descendant (Fig. 5's equation).
    NodeSet Children = evalAxis(D, Axis::Child, {X});
    NodeSet Expected = Children;
    NodeSet Deeper = evalAxis(D, Axis::Descendant, Children);
    Expected.insert(Deeper.begin(), Deeper.end());
    EXPECT_EQ(evalAxis(D, Axis::Descendant, {X}), Expected);
    // following = desc-or-self(foll-sibling(anc-or-self)).
    NodeSet F = evalAxis(
        D, Axis::DescOrSelf,
        evalAxis(D, Axis::FollSibling, evalAxis(D, Axis::AncOrSelf, {X})));
    EXPECT_EQ(evalAxis(D, Axis::Following, {X}), F);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AxesPropertyTest, ::testing::Range(1, 13));

} // namespace
